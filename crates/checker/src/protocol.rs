//! Strong-model ownership-migration protocol monitor.
//!
//! Tracks the 5-step migration state machine per strong-model page
//! (PAPER.md §4) from the protocol events:
//!
//! - `FirstTouch` / `OwnAcquired` / `OwnGrant` establish who owns a page;
//! - `OwnRequest` (emitted by the requester) and `OwnForward` (carrying
//!   the original requester in its third payload slot) feed the pending
//!   request set;
//! - `PageProtect` / `PageUnmap` on the granter mark that access was
//!   withdrawn before the grant;
//! - `FrameOwner` events mirror the advisory `FrameOwners` registry;
//! - `MailSend` / `MailRecv` carry the send-time stamp as a correlation
//!   id.
//!
//! Checks, in order (a page stops being analyzed after its first finding,
//! so one planted bug yields exactly one finding):
//!
//! 1. `grant-by-non-owner` — an `OwnGrant` from a core that is not the
//!    page's current owner (single-owner invariant).
//! 2. `grant-without-request` — a grant to a core that never requests the
//!    page anywhere in the stream (only when the stream is complete).
//! 3. `grant-without-withdraw` — the granter did not protect or unmap its
//!    own mapping (TLB shootdown) before granting the page away.
//! 4. `acquired-not-owner` — an `OwnAcquired` on a core the grant history
//!    says is not the owner.
//! 5. `frame-registry-mismatch` — at `OwnAcquired`, the latest
//!    `FrameOwner` record for the page's frame names a different core.
//! 6. `recv-without-send` — a `MailRecv` with no matching `MailSend`
//!    (same source, destination, kind and stamp; only when the stream is
//!    complete).
//! 7. `double-first-touch` — two `FirstTouch` events allocating
//!    *different frames* for the same page. The scratch-pad lock
//!    serialises first-touch, so a correct run allocates each page's
//!    frame exactly once globally (a later migration traces `Migrate`,
//!    not `FirstTouch`); a second allocation is the signature of a
//!    check-then-act race on the placement scratchpad.
//!
//! Ownership state is initialised lazily from positive evidence — a page
//! whose early history predates the trace window is adopted, not flagged.
//!
//! ## Clock slop and deferred chain links
//!
//! Event stamps are per-core virtual clocks, and the baton executor runs
//! an elected core up to a scheduling quantum ahead of its peers — so the
//! merged `(t, core)` order the checker analyzes can locally disagree
//! with causal order across cores. A dense ownership-grant chain (several
//! cores bouncing one strong page within a quantum) then arrives with
//! links transposed: core B's onward grant can carry an *earlier* stamp
//! than the grant that made B the owner. Flagging on first sight would
//! report false `grant-by-non-owner`/`acquired-not-owner` findings on
//! perfectly serialised runs (observed on strong-model Laplace from 48 to
//! 512 cores).
//!
//! The monitor therefore treats "actor is not the tracked owner" as
//! *unproven* rather than wrong: the event is parked on the page's
//! deferred list, and every time the tracked owner changes, deferred
//! events whose actor just became owner are replayed in stamp order
//! (cascading — an applied grant can legitimise the next). Only events
//! still unlinked when the stream ends are reported, with their original
//! stamps. A genuinely forged grant never links (nobody ever grants the
//! page to the forger), so planted single-owner violations are still
//! caught — the tolerance trades *when* they are reported, not *whether*.
//! For the same reason the absence-based checks consult whole-stream
//! evidence: a grant is unsolicited only if its target never requests the
//! page, and a `MailRecv` unmatched only against the full send multiset.

use crate::report::{Detector, Finding};
use crate::{Rec, StreamInfo, MODEL_STRONG};
use scc_hw::instr::EventKind;
use std::collections::{HashMap, HashSet};

#[derive(Default)]
struct PageState {
    owner: Option<usize>,
    /// The event line that established the current owner (for excerpts).
    owner_line: Option<String>,
    /// The first `FirstTouch` seen for the page: (core, frame, line).
    touch: Option<(usize, u32, String)>,
    /// Cores with an outstanding ownership request.
    pending: HashSet<u32>,
    /// Ownership events whose actor was not the tracked owner when they
    /// arrived in stamp order — parked until the grant chain catches up
    /// (see "Clock slop and deferred chain links" above).
    deferred: Vec<Held>,
    /// First finding already reported — stop analyzing this page.
    dead: bool,
}

/// An out-of-order ownership event waiting for its chain link.
enum Held {
    /// An `OwnGrant` whose granter was not the tracked owner. `withdrew`
    /// records whether the granter's withdraw credit was present at defer
    /// time — the granter's own protect/unmap shares its clock, so in
    /// stamp order it always precedes the grant and can be consumed
    /// immediately.
    Grant {
        granter: usize,
        to: u32,
        withdrew: bool,
        t: u64,
        line: String,
    },
    /// An `OwnAcquired` on a core the grant history did not (yet) name
    /// as owner.
    Acquired {
        core: usize,
        frame: u32,
        t: u64,
        line: String,
    },
}

impl Held {
    fn actor(&self) -> usize {
        match self {
            Held::Grant { granter, .. } => *granter,
            Held::Acquired { core, .. } => *core,
        }
    }

    fn t(&self) -> u64 {
        match self {
            Held::Grant { t, .. } | Held::Acquired { t, .. } => *t,
        }
    }
}

/// Replay deferred events that the current owner legitimises, cascading
/// until no deferred event's actor matches the tracked owner. Applied
/// grants run the same request/withdraw checks as in-order ones.
fn settle(
    page: u32,
    st: &mut PageState,
    info: &StreamInfo,
    requested: &HashMap<u32, HashSet<u32>>,
    frame_owner: &HashMap<u32, (u32, String)>,
    frame_ever: &HashMap<u32, HashSet<u32>>,
    findings: &mut Vec<Finding>,
) {
    loop {
        if st.dead {
            st.deferred.clear();
            return;
        }
        let Some(owner) = st.owner else { return };
        let Some(i) = st
            .deferred
            .iter()
            .enumerate()
            .filter(|(_, h)| h.actor() == owner)
            .min_by_key(|(_, h)| h.t())
            .map(|(i, _)| i)
        else {
            return;
        };
        match st.deferred.remove(i) {
            Held::Grant {
                granter,
                to,
                withdrew,
                t,
                line,
            } => {
                let ever_requested = requested
                    .get(&page)
                    .is_some_and(|req| req.contains(&to));
                if info.complete && !st.pending.contains(&to) && !ever_requested {
                    st.dead = true;
                    findings.push(Finding {
                        detector: Detector::Protocol,
                        slug: "grant-without-request",
                        page: Some(page),
                        cores: vec![granter, to as usize],
                        t,
                        message: format!(
                            "core {:02} granted strong page {} to core {:02}, which has no \
                             outstanding ownership request",
                            granter, page, to
                        ),
                        excerpt: vec![line],
                    });
                    continue;
                }
                if !withdrew {
                    st.dead = true;
                    findings.push(Finding {
                        detector: Detector::Protocol,
                        slug: "grant-without-withdraw",
                        page: Some(page),
                        cores: vec![granter, to as usize],
                        t,
                        message: format!(
                            "core {:02} granted strong page {} to core {:02} without first \
                             withdrawing its own access (no PTE protect/unmap + TLB \
                             shootdown before the grant)",
                            granter, page, to
                        ),
                        excerpt: vec![line],
                    });
                    continue;
                }
                st.pending.remove(&to);
                st.owner = Some(to as usize);
                st.owner_line = Some(line);
            }
            Held::Acquired {
                core,
                frame,
                t,
                line,
            } => {
                let ever_owned = frame_ever
                    .get(&frame)
                    .is_some_and(|owners| owners.contains(&(core as u32)));
                if let Some((fo, fline)) = frame_owner.get(&frame) {
                    if *fo as usize != core && !ever_owned {
                        st.dead = true;
                        findings.push(Finding {
                            detector: Detector::Protocol,
                            slug: "frame-registry-mismatch",
                            page: Some(page),
                            cores: vec![*fo as usize, core],
                            t,
                            message: format!(
                                "core {:02} acquired strong page {} (frame {}), but the \
                                 FrameOwners registry last recorded core {:02} as the \
                                 frame's exclusive owner",
                                core, page, frame, fo
                            ),
                            excerpt: vec![fline.clone(), line],
                        });
                    }
                }
            }
        }
    }
}

pub fn analyze(recs: &[Rec], info: &StreamInfo) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut pages: HashMap<u32, PageState> = HashMap::new();
    // (core, page) pairs whose mapping was withdrawn (protect/unmap) and
    // not yet consumed by a grant from that core.
    let mut withdrawn: HashMap<(usize, u32), String> = HashMap::new();
    // frame -> (owner, line) from FrameOwner events (owner == u32::MAX on
    // release is represented by removal).
    let mut frame_owner: HashMap<u32, (u32, String)> = HashMap::new();
    // (src, dst, kind, stamp) -> outstanding send count.
    let mut sends: HashMap<(usize, usize, u32, u32), u32> = HashMap::new();

    let strong = |page: u32| info.model(page) == Some(MODEL_STRONG);

    // Whole-stream evidence for the absence-based checks (see the module
    // docs on clock slop): every core that ever requests each page, and
    // the full send multiset — collected up front so an event stamped
    // behind its causal position cannot make its counterpart look absent.
    let mut requested: HashMap<u32, HashSet<u32>> = HashMap::new();
    // frame -> every core the FrameOwners registry ever names as its
    // exclusive owner (the granter stamps the registry update, so it can
    // trail the acquirer's `OwnAcquired` in the merged order).
    let mut frame_ever: HashMap<u32, HashSet<u32>> = HashMap::new();
    for r in recs {
        match r.e.kind {
            EventKind::OwnRequest if strong(r.e.a) => {
                requested.entry(r.e.a).or_default().insert(r.core as u32);
            }
            EventKind::OwnForward if strong(r.e.a) => {
                requested.entry(r.e.a).or_default().insert(r.e.c);
            }
            EventKind::FrameOwner if r.e.b != u32::MAX => {
                frame_ever.entry(r.e.a).or_default().insert(r.e.b);
            }
            EventKind::MailSend => {
                *sends.entry((r.core, r.e.a as usize, r.e.b, r.e.c)).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    for r in recs {
        let c = r.core;
        match r.e.kind {
            EventKind::FirstTouch if strong(r.e.a) => {
                let page = r.e.a;
                let frame = r.e.b;
                let st = pages.entry(page).or_default();
                if st.dead {
                    continue;
                }
                match &st.touch {
                    Some((c0, f0, line0)) if *f0 != frame => {
                        let (c0, line0) = (*c0, line0.clone());
                        st.dead = true;
                        findings.push(Finding {
                            detector: Detector::Protocol,
                            slug: "double-first-touch",
                            page: Some(page),
                            cores: vec![c0, c],
                            t: r.t,
                            message: format!(
                                "core {:02} first-touch allocated frame {} for strong page \
                                 {}, but core {:02} had already allocated frame {} — the \
                                 scratchpad check-then-act was not serialised",
                                c, frame, page, c0, *f0
                            ),
                            excerpt: vec![line0, r.line()],
                        });
                        continue;
                    }
                    None => st.touch = Some((c, frame, r.line())),
                    _ => {}
                }
                if st.owner.is_none() {
                    st.owner = Some(c);
                    st.owner_line = Some(r.line());
                    settle(page, st, info, &requested, &frame_owner, &frame_ever, &mut findings);
                }
            }
            EventKind::OwnRequest if strong(r.e.a) => {
                pages.entry(r.e.a).or_default().pending.insert(c as u32);
            }
            EventKind::OwnForward if strong(r.e.a) => {
                pages.entry(r.e.a).or_default().pending.insert(r.e.c);
            }
            EventKind::PageProtect | EventKind::PageUnmap => {
                if let Some(page) = info.page_of_va(r.e.a) {
                    withdrawn.insert((c, page), r.line());
                }
            }
            EventKind::OwnGrant if strong(r.e.a) => {
                let page = r.e.a;
                let to = r.e.b as usize;
                let st = pages.entry(page).or_default();
                if st.dead {
                    continue;
                }
                if st.owner.is_some_and(|owner| owner != c) {
                    // Not (yet) provably the owner — park the grant; its
                    // withdraw credit is consumed now (same-core stamps
                    // are monotone, so the credit is already in).
                    let withdrew = withdrawn.remove(&(c, page)).is_some();
                    st.deferred.push(Held::Grant {
                        granter: c,
                        to: r.e.b,
                        withdrew,
                        t: r.t,
                        line: r.line(),
                    });
                    continue;
                }
                let ever_requested = requested
                    .get(&page)
                    .is_some_and(|req| req.contains(&(to as u32)));
                if info.complete && !st.pending.contains(&(to as u32)) && !ever_requested {
                    st.dead = true;
                    findings.push(Finding {
                        detector: Detector::Protocol,
                        slug: "grant-without-request",
                        page: Some(page),
                        cores: vec![c, to],
                        t: r.t,
                        message: format!(
                            "core {:02} granted strong page {} to core {:02}, which has no \
                             outstanding ownership request",
                            c, page, to
                        ),
                        excerpt: vec![r.line()],
                    });
                    continue;
                }
                if withdrawn.remove(&(c, page)).is_none() {
                    st.dead = true;
                    findings.push(Finding {
                        detector: Detector::Protocol,
                        slug: "grant-without-withdraw",
                        page: Some(page),
                        cores: vec![c, to],
                        t: r.t,
                        message: format!(
                            "core {:02} granted strong page {} to core {:02} without first \
                             withdrawing its own access (no PTE protect/unmap + TLB \
                             shootdown before the grant)",
                            c, page, to
                        ),
                        excerpt: vec![r.line()],
                    });
                    continue;
                }
                st.pending.remove(&(to as u32));
                st.owner = Some(to);
                st.owner_line = Some(r.line());
                settle(page, st, info, &requested, &frame_owner, &frame_ever, &mut findings);
            }
            EventKind::OwnAcquired if strong(r.e.a) => {
                let page = r.e.a;
                let frame = r.e.b;
                let st = pages.entry(page).or_default();
                if st.dead {
                    continue;
                }
                match st.owner {
                    Some(owner) if owner != c => {
                        // The grant that made this core owner may still be
                        // ahead in stamp order — park the acquire with it.
                        st.deferred.push(Held::Acquired {
                            core: c,
                            frame,
                            t: r.t,
                            line: r.line(),
                        });
                        continue;
                    }
                    None => {
                        st.owner = Some(c);
                        st.owner_line = Some(r.line());
                        settle(page, st, info, &requested, &frame_owner, &frame_ever, &mut findings);
                        if st.dead {
                            continue;
                        }
                    }
                    _ => {}
                }
                let ever_owned = frame_ever
                    .get(&frame)
                    .is_some_and(|owners| owners.contains(&(c as u32)));
                if let Some((fo, fline)) = frame_owner.get(&frame) {
                    if *fo as usize != c && !ever_owned {
                        st.dead = true;
                        findings.push(Finding {
                            detector: Detector::Protocol,
                            slug: "frame-registry-mismatch",
                            page: Some(page),
                            cores: vec![*fo as usize, c],
                            t: r.t,
                            message: format!(
                                "core {:02} acquired strong page {} (frame {}), but the \
                                 FrameOwners registry last recorded core {:02} as the \
                                 frame's exclusive owner",
                                c, page, frame, fo
                            ),
                            excerpt: vec![fline.clone(), r.line()],
                        });
                    }
                }
            }
            EventKind::FrameOwner => {
                if r.e.b == u32::MAX {
                    frame_owner.remove(&r.e.a);
                } else {
                    frame_owner.insert(r.e.a, (r.e.b, r.line()));
                }
            }
            EventKind::MailRecv => {
                let key = (r.e.a as usize, c, r.e.b, r.e.c);
                match sends.get_mut(&key) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ if info.complete => {
                        findings.push(Finding {
                            detector: Detector::Protocol,
                            slug: "recv-without-send",
                            page: None,
                            cores: vec![r.e.a as usize, c],
                            t: r.t,
                            message: format!(
                                "core {:02} received mail (kind {}, stamp {}) from core \
                                 {:02} with no matching send in the stream",
                                c, r.e.b, r.e.c, r.e.a
                            ),
                            excerpt: vec![r.line()],
                        });
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    // Deferred events that never found their chain link are real
    // violations: nobody ever granted the page to their actor. Report the
    // earliest per page (with its original stamp — the final sort by `t`
    // puts it where the event happened), then stop analyzing the page,
    // matching the one-finding-per-page contract.
    let mut unsettled: Vec<u32> = pages
        .iter()
        .filter(|(_, st)| !st.dead && !st.deferred.is_empty())
        .map(|(page, _)| *page)
        .collect();
    unsettled.sort_unstable();
    for page in unsettled {
        let st = pages.get_mut(&page).expect("page tracked");
        st.deferred.sort_by_key(Held::t);
        let owner = st.owner.expect("deferral implies a tracked owner");
        let mut excerpt = Vec::new();
        if let Some(l) = &st.owner_line {
            excerpt.push(l.clone());
        }
        match &st.deferred[0] {
            Held::Grant { granter, t, line, .. } => {
                excerpt.push(line.clone());
                findings.push(Finding {
                    detector: Detector::Protocol,
                    slug: "grant-by-non-owner",
                    page: Some(page),
                    cores: vec![owner, *granter],
                    t: *t,
                    message: format!(
                        "core {:02} granted strong page {} away, but the protocol \
                         history says core {:02} owns it — the single-owner \
                         invariant is broken",
                        granter, page, owner
                    ),
                    excerpt,
                });
            }
            Held::Acquired { core, t, line, .. } => {
                excerpt.push(line.clone());
                findings.push(Finding {
                    detector: Detector::Protocol,
                    slug: "acquired-not-owner",
                    page: Some(page),
                    cores: vec![owner, *core],
                    t: *t,
                    message: format!(
                        "core {:02} completed an ownership migration of strong page \
                         {} but the grant history names core {:02} as owner",
                        core, page, owner
                    ),
                    excerpt,
                });
            }
        }
        st.dead = true;
    }
    findings
}
