//! Strong-model ownership-migration protocol monitor.
//!
//! Tracks the 5-step migration state machine per strong-model page
//! (PAPER.md §4) from the protocol events:
//!
//! - `FirstTouch` / `OwnAcquired` / `OwnGrant` establish who owns a page;
//! - `OwnRequest` (emitted by the requester) and `OwnForward` (carrying
//!   the original requester in its third payload slot) feed the pending
//!   request set;
//! - `PageProtect` / `PageUnmap` on the granter mark that access was
//!   withdrawn before the grant;
//! - `FrameOwner` events mirror the advisory `FrameOwners` registry;
//! - `MailSend` / `MailRecv` carry the send-time stamp as a correlation
//!   id.
//!
//! Checks, in order (a page stops being analyzed after its first finding,
//! so one planted bug yields exactly one finding):
//!
//! 1. `grant-by-non-owner` — an `OwnGrant` from a core that is not the
//!    page's current owner (single-owner invariant).
//! 2. `grant-without-request` — a grant to a core with no outstanding
//!    request (only when the stream is complete).
//! 3. `grant-without-withdraw` — the granter did not protect or unmap its
//!    own mapping (TLB shootdown) before granting the page away.
//! 4. `acquired-not-owner` — an `OwnAcquired` on a core the grant history
//!    says is not the owner.
//! 5. `frame-registry-mismatch` — at `OwnAcquired`, the latest
//!    `FrameOwner` record for the page's frame names a different core.
//! 6. `recv-without-send` — a `MailRecv` with no matching `MailSend`
//!    (same source, destination, kind and stamp; only when the stream is
//!    complete).
//! 7. `double-first-touch` — two `FirstTouch` events allocating
//!    *different frames* for the same page. The scratch-pad lock
//!    serialises first-touch, so a correct run allocates each page's
//!    frame exactly once globally (a later migration traces `Migrate`,
//!    not `FirstTouch`); a second allocation is the signature of a
//!    check-then-act race on the placement scratchpad.
//!
//! Ownership state is initialised lazily from positive evidence — a page
//! whose early history predates the trace window is adopted, not flagged.

use crate::report::{Detector, Finding};
use crate::{Rec, StreamInfo, MODEL_STRONG};
use scc_hw::instr::EventKind;
use std::collections::{HashMap, HashSet};

#[derive(Default)]
struct PageState {
    owner: Option<usize>,
    /// The event line that established the current owner (for excerpts).
    owner_line: Option<String>,
    /// The first `FirstTouch` seen for the page: (core, frame, line).
    touch: Option<(usize, u32, String)>,
    /// Cores with an outstanding ownership request.
    pending: HashSet<u32>,
    /// First finding already reported — stop analyzing this page.
    dead: bool,
}

pub fn analyze(recs: &[Rec], info: &StreamInfo) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut pages: HashMap<u32, PageState> = HashMap::new();
    // (core, page) pairs whose mapping was withdrawn (protect/unmap) and
    // not yet consumed by a grant from that core.
    let mut withdrawn: HashMap<(usize, u32), String> = HashMap::new();
    // frame -> (owner, line) from FrameOwner events (owner == u32::MAX on
    // release is represented by removal).
    let mut frame_owner: HashMap<u32, (u32, String)> = HashMap::new();
    // (src, dst, kind, stamp) -> outstanding send count.
    let mut sends: HashMap<(usize, usize, u32, u32), u32> = HashMap::new();

    let strong = |page: u32| info.model(page) == Some(MODEL_STRONG);

    for r in recs {
        let c = r.core;
        match r.e.kind {
            EventKind::FirstTouch if strong(r.e.a) => {
                let page = r.e.a;
                let frame = r.e.b;
                let st = pages.entry(page).or_default();
                if st.dead {
                    continue;
                }
                match &st.touch {
                    Some((c0, f0, line0)) if *f0 != frame => {
                        let (c0, line0) = (*c0, line0.clone());
                        st.dead = true;
                        findings.push(Finding {
                            detector: Detector::Protocol,
                            slug: "double-first-touch",
                            page: Some(page),
                            cores: vec![c0, c],
                            t: r.t,
                            message: format!(
                                "core {:02} first-touch allocated frame {} for strong page \
                                 {}, but core {:02} had already allocated frame {} — the \
                                 scratchpad check-then-act was not serialised",
                                c, frame, page, c0, *f0
                            ),
                            excerpt: vec![line0, r.line()],
                        });
                        continue;
                    }
                    None => st.touch = Some((c, frame, r.line())),
                    _ => {}
                }
                if st.owner.is_none() {
                    st.owner = Some(c);
                    st.owner_line = Some(r.line());
                }
            }
            EventKind::OwnRequest if strong(r.e.a) => {
                pages.entry(r.e.a).or_default().pending.insert(c as u32);
            }
            EventKind::OwnForward if strong(r.e.a) => {
                pages.entry(r.e.a).or_default().pending.insert(r.e.c);
            }
            EventKind::PageProtect | EventKind::PageUnmap => {
                if let Some(page) = info.page_of_va(r.e.a) {
                    withdrawn.insert((c, page), r.line());
                }
            }
            EventKind::OwnGrant if strong(r.e.a) => {
                let page = r.e.a;
                let to = r.e.b as usize;
                let st = pages.entry(page).or_default();
                if st.dead {
                    continue;
                }
                if let Some(owner) = st.owner {
                    if owner != c {
                        st.dead = true;
                        let mut excerpt = Vec::new();
                        if let Some(l) = &st.owner_line {
                            excerpt.push(l.clone());
                        }
                        excerpt.push(r.line());
                        findings.push(Finding {
                            detector: Detector::Protocol,
                            slug: "grant-by-non-owner",
                            page: Some(page),
                            cores: vec![owner, c],
                            t: r.t,
                            message: format!(
                                "core {:02} granted strong page {} away, but the protocol \
                                 history says core {:02} owns it — the single-owner \
                                 invariant is broken",
                                c, page, owner
                            ),
                            excerpt,
                        });
                        continue;
                    }
                }
                if info.complete && !st.pending.contains(&(to as u32)) {
                    st.dead = true;
                    findings.push(Finding {
                        detector: Detector::Protocol,
                        slug: "grant-without-request",
                        page: Some(page),
                        cores: vec![c, to],
                        t: r.t,
                        message: format!(
                            "core {:02} granted strong page {} to core {:02}, which has no \
                             outstanding ownership request",
                            c, page, to
                        ),
                        excerpt: vec![r.line()],
                    });
                    continue;
                }
                if withdrawn.remove(&(c, page)).is_none() {
                    st.dead = true;
                    findings.push(Finding {
                        detector: Detector::Protocol,
                        slug: "grant-without-withdraw",
                        page: Some(page),
                        cores: vec![c, to],
                        t: r.t,
                        message: format!(
                            "core {:02} granted strong page {} to core {:02} without first \
                             withdrawing its own access (no PTE protect/unmap + TLB \
                             shootdown before the grant)",
                            c, page, to
                        ),
                        excerpt: vec![r.line()],
                    });
                    continue;
                }
                st.pending.remove(&(to as u32));
                st.owner = Some(to);
                st.owner_line = Some(r.line());
            }
            EventKind::OwnAcquired if strong(r.e.a) => {
                let page = r.e.a;
                let frame = r.e.b;
                let st = pages.entry(page).or_default();
                if st.dead {
                    continue;
                }
                match st.owner {
                    Some(owner) if owner != c => {
                        st.dead = true;
                        let mut excerpt = Vec::new();
                        if let Some(l) = &st.owner_line {
                            excerpt.push(l.clone());
                        }
                        excerpt.push(r.line());
                        findings.push(Finding {
                            detector: Detector::Protocol,
                            slug: "acquired-not-owner",
                            page: Some(page),
                            cores: vec![owner, c],
                            t: r.t,
                            message: format!(
                                "core {:02} completed an ownership migration of strong page \
                                 {} but the grant history names core {:02} as owner",
                                c, page, owner
                            ),
                            excerpt,
                        });
                        continue;
                    }
                    None => {
                        st.owner = Some(c);
                        st.owner_line = Some(r.line());
                    }
                    _ => {}
                }
                if let Some((fo, fline)) = frame_owner.get(&frame) {
                    if *fo as usize != c {
                        st.dead = true;
                        findings.push(Finding {
                            detector: Detector::Protocol,
                            slug: "frame-registry-mismatch",
                            page: Some(page),
                            cores: vec![*fo as usize, c],
                            t: r.t,
                            message: format!(
                                "core {:02} acquired strong page {} (frame {}), but the \
                                 FrameOwners registry last recorded core {:02} as the \
                                 frame's exclusive owner",
                                c, page, frame, fo
                            ),
                            excerpt: vec![fline.clone(), r.line()],
                        });
                    }
                }
            }
            EventKind::FrameOwner => {
                if r.e.b == u32::MAX {
                    frame_owner.remove(&r.e.a);
                } else {
                    frame_owner.insert(r.e.a, (r.e.b, r.line()));
                }
            }
            EventKind::MailSend => {
                *sends.entry((c, r.e.a as usize, r.e.b, r.e.c)).or_insert(0) += 1;
            }
            EventKind::MailRecv => {
                let key = (r.e.a as usize, c, r.e.b, r.e.c);
                match sends.get_mut(&key) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ if info.complete => {
                        findings.push(Finding {
                            detector: Detector::Protocol,
                            slug: "recv-without-send",
                            page: None,
                            cores: vec![r.e.a as usize, c],
                            t: r.t,
                            message: format!(
                                "core {:02} received mail (kind {}, stamp {}) from core \
                                 {:02} with no matching send in the stream",
                                c, r.e.b, r.e.c, r.e.a
                            ),
                            excerpt: vec![r.line()],
                        });
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    findings
}
