//! Vector-clock happens-before race detector for lazy-release pages.
//!
//! ## The happens-before model
//!
//! Each core carries a vector clock; three sync event kinds create edges:
//!
//! - `ReleaseFlush reg=R` (lock release): the lock's clock absorbs the
//!   releaser's, then the releaser opens a new epoch.
//! - `AcquireInv reg=R` (lock acquire): the acquirer's clock absorbs the
//!   lock's — everything before any earlier release of `R` now
//!   happens-before everything after this acquire.
//! - `Barrier`: a collective instance completes when every
//!   barrier-participating core has entered it; all clocks join and every
//!   participant opens a new epoch. (Barrier events are stamped at entry,
//!   and a core's post-barrier events always carry later timestamps than
//!   every participant's entry, so processing the join at the last entry
//!   event is sound.)
//!
//! Shared accesses are `SvmRead`/`SvmWrite` events, page-granular and
//! deduplicated per sync segment by the emitting layer. For every read of
//! a lazy-release page the detector asks: does the most recent write to
//! that page happen-before this read? If not — no release-flush +
//! acquire-invalidate (or barrier) path connects them — the read is
//! guaranteed stale on the simulated non-coherent caches and a
//! `stale-read` finding is reported.
//!
//! ## Documented approximations
//!
//! - Page granularity: two cores touching different words of one page are
//!   treated as touching the same datum (the consistency unit *is* the
//!   page on this hardware).
//! - Per-segment dedup means only the first access of each (page, kind)
//!   per segment is visible; a race whose *second* unsynchronised access
//!   repeats within one segment is still caught via the first.
//! - Write→write pairs are not flagged: concurrent writers to disjoint
//!   words of a boundary page are a normal SPMD idiom (each writer's
//!   lines flush independently through the WCB); only write→read
//!   staleness is a consistency violation the models promise to prevent.
//! - For the same reason, a read by a core that has itself written the
//!   page in its current sync segment is not checked: the reader is a
//!   co-writer of a boundary page (word-disjoint by the idiom above) and
//!   its own words come from its own cache, which cannot be stale.
//! - Strong-model and write-invalidate pages are skipped here — the
//!   hardware protocol keeps them coherent and the [`crate::protocol`]
//!   monitor checks the protocol itself.

use crate::report::{Detector, Finding};
use crate::{Rec, StreamInfo, MODEL_LAZY};
use scc_hw::instr::EventKind;
use std::collections::{HashMap, HashSet};

fn join(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

struct LastWrite {
    /// The writer's own epoch (`vc[w][w]`) when it wrote.
    epoch: u64,
    t: u64,
    line: String,
}

pub fn analyze(recs: &[Rec], info: &StreamInfo) -> Vec<Finding> {
    let n = info.ncores;
    let mut findings = Vec::new();
    if n == 0 {
        return findings;
    }
    // vc[c][c] starts at 1 so that an access in a core's very first
    // segment is still distinguishable from "never synchronised with".
    let mut vc: Vec<Vec<u64>> = (0..n)
        .map(|c| {
            let mut v = vec![0u64; n];
            v[c] = 1;
            v
        })
        .collect();
    let mut lock_vc: HashMap<u32, Vec<u64>> = HashMap::new();
    // page -> writer core -> its most recent write.
    let mut last_write: HashMap<u32, HashMap<usize, LastWrite>> = HashMap::new();
    let mut bar_count = vec![0u64; n];
    let mut bar_done = 0u64;
    let mut flagged: HashSet<u32> = HashSet::new();

    for r in recs {
        let c = r.core;
        match r.e.kind {
            EventKind::ReleaseFlush => {
                let lvc = lock_vc.entry(r.e.a).or_insert_with(|| vec![0u64; n]);
                join(lvc, &vc[c]);
                vc[c][c] += 1;
            }
            EventKind::AcquireInv => {
                if let Some(lvc) = lock_vc.get(&r.e.a) {
                    let lvc = lvc.clone();
                    join(&mut vc[c], &lvc);
                }
            }
            EventKind::Barrier => {
                bar_count[c] += 1;
                let all_in = info
                    .barrier_cores
                    .iter()
                    .all(|&bc| bar_count[bc] > bar_done);
                if all_in {
                    bar_done += 1;
                    let mut j = vec![0u64; n];
                    for &bc in &info.barrier_cores {
                        join(&mut j, &vc[bc]);
                    }
                    for &bc in &info.barrier_cores {
                        vc[bc] = j.clone();
                        vc[bc][bc] += 1;
                    }
                }
            }
            EventKind::SvmWrite if info.model(r.e.a) == Some(MODEL_LAZY) => {
                last_write.entry(r.e.a).or_default().insert(
                    c,
                    LastWrite {
                        epoch: vc[c][c],
                        t: r.t,
                        line: r.line(),
                    },
                );
            }
            EventKind::SvmRead if info.model(r.e.a) == Some(MODEL_LAZY) => {
                let page = r.e.a;
                let Some(writers) = last_write.get(&page) else {
                    continue;
                };
                // A reader that wrote the page in its current segment is a
                // co-writer of a boundary page: its own words come from its
                // own cache and cannot be stale (see the module docs).
                if writers.get(&c).is_some_and(|w| w.epoch == vc[c][c]) {
                    continue;
                }
                // Flag against the most recent unsynchronised writer.
                let stale = writers
                    .iter()
                    .filter(|(&w, lw)| w != c && vc[c][w] < lw.epoch)
                    .max_by_key(|(&w, lw)| (lw.t, w));
                if let Some((&w, lw)) = stale {
                    if flagged.insert(page) {
                        findings.push(Finding {
                            detector: Detector::Race,
                            slug: "stale-read",
                            page: Some(page),
                            cores: vec![w, c],
                            t: r.t,
                            message: format!(
                                "core {:02} reads lazy-release page {} written by core {:02} \
                                 with no happens-before path (no release-flush + \
                                 acquire-invalidate or barrier between them): the read is \
                                 guaranteed stale on the non-coherent caches",
                                c, page, w
                            ),
                            excerpt: vec![lw.line.clone(), r.line()],
                        });
                    }
                }
            }
            _ => {}
        }
    }
    findings
}
