//! The checker's typed findings model and report rendering.

/// Which analysis produced a finding.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Detector {
    /// Vector-clock happens-before race detector (lazy release pages).
    Race,
    /// Strong-model ownership-migration protocol monitor.
    Protocol,
    /// Synchronization linter.
    Lint,
}

impl Detector {
    pub fn name(self) -> &'static str {
        match self {
            Detector::Race => "race",
            Detector::Protocol => "protocol",
            Detector::Lint => "lint",
        }
    }
}

/// One confirmed finding. Equality is exact — the online-sink vs
/// offline-replay shadow test compares whole findings, excerpts included.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    pub detector: Detector,
    /// Stable machine-readable kind, e.g. `stale-read`,
    /// `grant-by-non-owner`, `unreleased-lock` (the `--expect` key).
    pub slug: &'static str,
    /// The SVM page involved, if the finding is about a page.
    pub page: Option<u32>,
    /// The cores involved, in role order (e.g. `[writer, reader]` for a
    /// stale read, `[owner, granter]` for a forged grant).
    pub cores: Vec<usize>,
    /// Simulated-cycle timestamp of the event that confirmed the finding.
    pub t: u64,
    pub message: String,
    /// Protocol-log–style lines of the events behind the finding.
    pub excerpt: Vec<String>,
}

/// The result of one checker run.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// At least one per-core ring wrapped: the stream is incomplete, and
    /// absence-based checks (grant-without-request, recv-without-send)
    /// were skipped.
    pub truncated: bool,
    /// Events lost to ring wrap (0 when `!truncated`).
    pub lost: u64,
    /// Events analyzed.
    pub events: usize,
    /// Number of cores observed in the stream.
    pub cores: usize,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Finding {
    /// The finding's identity for deduplication on the fuzzing path:
    /// detector, slug, page and role-ordered cores — everything that
    /// distinguishes two *distinct* bugs, and nothing that merely varies
    /// between two reproductions of the same one (timestamps, excerpt
    /// text). Two schedules that trip the same protocol violation on the
    /// same page with the same cores count as one finding in a corpus.
    pub fn dedup_key(&self) -> (Detector, &'static str, Option<u32>, &[usize]) {
        (self.detector, self.slug, self.page, &self.cores)
    }
}

impl Report {
    /// Deterministic 64-bit fingerprint of the finding *set* (dedup keys,
    /// sorted): the oracle-side half of svm-fuzz's replayability story.
    /// Two runs — in the same process or across processes — report the
    /// same fingerprint iff they found the same set of distinct bugs.
    pub fn fingerprint(&self) -> u64 {
        let mut keys: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                let cores: Vec<String> = f.cores.iter().map(|c| c.to_string()).collect();
                format!(
                    "{}:{}:{}:{}",
                    f.detector.name(),
                    f.slug,
                    f.page.map_or(-1i64, i64::from),
                    cores.join(",")
                )
            })
            .collect();
        keys.sort();
        keys.dedup();
        // FNV-1a over the sorted keys: stable across platforms and
        // processes (no RandomState).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for k in &keys {
            for b in k.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The distinct finding slugs, sorted — the coarse classification the
    /// fuzz loop logs per execution.
    pub fn slugs(&self) -> Vec<&'static str> {
        let mut s: Vec<&'static str> = self.findings.iter().map(|f| f.slug).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Render as JSON (hand-rolled — the workspace is offline and carries
    /// no serde_json).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"events\": {},\n  \"cores\": {},\n  \"truncated\": {},\n  \"lost\": {},\n",
            self.events, self.cores, self.truncated, self.lost
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"detector\": \"{}\", \"kind\": \"{}\", ",
                f.detector.name(),
                f.slug
            ));
            match f.page {
                Some(p) => out.push_str(&format!("\"page\": {p}, ")),
                None => out.push_str("\"page\": null, "),
            }
            let cores: Vec<String> = f.cores.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("\"cores\": [{}], \"t\": {}, ", cores.join(", "), f.t));
            out.push_str(&format!("\"message\": \"{}\", ", json_escape(&f.message)));
            let ex: Vec<String> = f
                .excerpt
                .iter()
                .map(|l| format!("\"{}\"", json_escape(l)))
                .collect();
            out.push_str(&format!("\"excerpt\": [{}]}}", ex.join(", ")));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Verdict for `svmcheck --expect SLUG`: the expected finding kind
    /// must be present, and *no other* kind may appear. Multiple
    /// instances of the expected kind pass (a planted bug may fire more
    /// than once on a long trace); any unexpected finding fails the run
    /// — an extra bug hiding behind an expected one must not go green.
    pub fn expect_ok(&self, slug: &str) -> bool {
        !self.findings.is_empty() && self.findings.iter().all(|f| f.slug == slug)
    }

    /// Render as a human-readable text report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "svmcheck: {} event(s) over {} core(s)",
            self.events, self.cores
        ));
        if self.truncated {
            out.push_str(&format!(
                " — stream TRUNCATED ({} event(s) lost to ring wrap; absence-based checks skipped)",
                self.lost
            ));
        }
        out.push('\n');
        if self.findings.is_empty() {
            out.push_str("no findings\n");
            return out;
        }
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "\nfinding {}/{}: [{}] {}\n",
                i + 1,
                self.findings.len(),
                f.detector.name(),
                f.slug
            ));
            let cores: Vec<String> = f.cores.iter().map(|c| format!("{c:02}")).collect();
            out.push_str(&format!(
                "  at cycle {} — page {} — cores {}\n",
                f.t,
                f.page.map_or("-".to_string(), |p| p.to_string()),
                cores.join(", ")
            ));
            out.push_str(&format!("  {}\n", f.message));
            for l in &f.excerpt {
                out.push_str(&format!("    {l}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(slug: &'static str) -> Finding {
        Finding {
            detector: Detector::Protocol,
            slug,
            page: Some(3),
            cores: vec![0, 1],
            t: 42,
            message: "test".into(),
            excerpt: vec![],
        }
    }

    fn report(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            truncated: false,
            lost: 0,
            events: 10,
            cores: 2,
        }
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_dedups_reproductions() {
        let a = report(vec![finding("stale-read"), finding("unreleased-lock")]);
        let b = report(vec![finding("unreleased-lock"), finding("stale-read")]);
        assert_eq!(a.fingerprint(), b.fingerprint(), "order must not matter");
        // The same bug firing twice is one distinct finding.
        let c = report(vec![finding("stale-read"), finding("stale-read")]);
        let d = report(vec![finding("stale-read")]);
        assert_eq!(c.fingerprint(), d.fingerprint());
        // Different sets fingerprint differently.
        assert_ne!(a.fingerprint(), d.fingerprint());
        assert_ne!(report(vec![]).fingerprint(), d.fingerprint());
        assert_eq!(a.slugs(), vec!["stale-read", "unreleased-lock"]);
    }

    #[test]
    fn expect_ok_requires_the_expected_kind_and_nothing_else() {
        // Exactly one expected finding: pass.
        assert!(report(vec![finding("stale-read")]).expect_ok("stale-read"));
        // Multiple instances of the expected kind: still a pass.
        assert!(report(vec![finding("stale-read"), finding("stale-read")])
            .expect_ok("stale-read"));
        // No findings at all: the planted bug was missed — fail.
        assert!(!report(vec![]).expect_ok("stale-read"));
        // Wrong kind: fail.
        assert!(!report(vec![finding("unreleased-lock")]).expect_ok("stale-read"));
        // Expected kind present but an *additional unexpected* finding
        // rides along: must fail (the historical bug this guards).
        assert!(!report(vec![finding("stale-read"), finding("unreleased-lock")])
            .expect_ok("stale-read"));
    }
}
