//! Collective boot: run one kernel instance per participating core.

use crate::frames::SharedFrames;
use crate::kernel::Kernel;
use parking_lot::Mutex;
use scc_hw::machine::{CoreResult, MachineInner};
use scc_hw::{CoreId, HwError, Machine, SccConfig};
use std::sync::Arc;

/// Cluster-wide state shared by all kernels of one machine.
pub struct ClusterShared {
    /// The machine's globally visible devices.
    pub machine: Arc<MachineInner>,
    /// Shared-region frame allocator (the header prefix is excluded).
    pub frames: SharedFrames,
    /// Bump allocator over the header prefix of the shared region, used by
    /// system services (SVM ownership vector, barrier words, region table).
    header: Mutex<HeaderArena>,
    /// Named header allocations: the first caller allocates, later callers
    /// get the same physical address (SPMD services bootstrap through this).
    named: Mutex<std::collections::HashMap<String, u32>>,
    /// Machine-wide singleton services (e.g. the SVM system's shared
    /// state), keyed by name.
    services: Mutex<std::collections::HashMap<String, Arc<dyn std::any::Any + Send + Sync>>>,
}

struct HeaderArena {
    next: u32,
    end: u32,
}

/// Bytes of the shared region reserved for system structures.
pub fn header_bytes(mach: &MachineInner) -> u32 {
    // Ownership vector (4 B/page) + first-touch fallback table (2 B/page)
    // + version (4 B/page) + multi-word copyset (8 B/page per 64 cores)
    // + per-core grant-set scratch rows + barriers/locks, rounded up to
    // whole pages.
    let pages = mach.map.shared_pages() as u32;
    let ncores = mach.cfg.ncores as u32;
    let cs_words = ncores.div_ceil(64);
    let want = pages * (10 + 8 * cs_words) + ncores * 8 * cs_words + 64 * 1024;
    (want + 4095) & !4095
}

impl ClusterShared {
    pub fn new(machine: Arc<MachineInner>) -> Arc<Self> {
        let hb = header_bytes(&machine);
        let frames = SharedFrames::new(&machine, hb);
        let base = machine.map.shared_base();
        Arc::new(ClusterShared {
            frames,
            header: Mutex::new(HeaderArena {
                next: base,
                end: base + hb,
            }),
            named: Mutex::new(std::collections::HashMap::new()),
            services: Mutex::new(std::collections::HashMap::new()),
            machine,
        })
    }

    /// Allocate `bytes` (aligned to `align`) from the shared header arena.
    /// Returns a physical address. Panics when the arena is exhausted —
    /// that is a sizing bug, not a runtime condition.
    pub fn alloc_header(&self, bytes: u32, align: u32) -> u32 {
        assert!(align.is_power_of_two());
        let mut h = self.header.lock();
        let pa = (h.next + align - 1) & !(align - 1);
        assert!(
            pa + bytes <= h.end,
            "shared header arena exhausted ({} wanted, {} left)",
            bytes,
            h.end - pa
        );
        h.next = pa + bytes;
        pa
    }

    /// Allocate-or-look-up a named header region. All cores calling with the
    /// same name receive the same physical address; the region is zeroed on
    /// first allocation.
    pub fn named_header(&self, name: &str, bytes: u32, align: u32) -> u32 {
        if let Some(pa) = self.named.lock().get(name) {
            return *pa;
        }
        let mut named = self.named.lock();
        // Double-checked under the lock.
        if let Some(pa) = named.get(name) {
            return *pa;
        }
        let pa = self.alloc_header(bytes, align);
        for off in (0..bytes).step_by(4) {
            self.machine.ram.write(pa + off, 4, 0);
        }
        named.insert(name.to_string(), pa);
        pa
    }

    /// Fetch the named machine-wide service, constructing it on first use.
    pub fn service_get_or_init<T, F>(&self, name: &str, init: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> Arc<T>,
    {
        let mut services = self.services.lock();
        let entry = services
            .entry(name.to_string())
            .or_insert_with(|| init() as Arc<dyn std::any::Any + Send + Sync>);
        Arc::clone(entry)
            .downcast::<T>()
            .expect("service type mismatch")
    }
}

/// A simulated SCC plus the cluster-wide kernel state; the entry point for
/// everything above the raw hardware.
pub struct Cluster {
    machine: Machine,
    shared: Arc<ClusterShared>,
}

impl Cluster {
    /// Build a machine and its cluster state.
    pub fn new(cfg: SccConfig) -> Result<Cluster, HwError> {
        let machine = Machine::new(cfg)?;
        let shared = ClusterShared::new(Arc::clone(machine.inner()));
        Ok(Cluster { machine, shared })
    }

    /// The underlying machine (peeks, configuration).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Cluster-shared kernel state.
    pub fn shared(&self) -> &Arc<ClusterShared> {
        &self.shared
    }

    /// Boot kernels on the first `n` cores and run `body` on each.
    pub fn run<R, F>(&self, n: usize, body: F) -> Result<Vec<CoreResult<R>>, HwError>
    where
        R: Send,
        F: Fn(&mut Kernel<'_>) -> R + Send + Sync,
    {
        let cores: Vec<CoreId> = (0..n).map(CoreId::from_raw).collect();
        self.run_on(&cores, body)
    }

    /// Boot kernels on an explicit core set and run `body` on each.
    pub fn run_on<R, F>(&self, cores: &[CoreId], body: F) -> Result<Vec<CoreResult<R>>, HwError>
    where
        R: Send,
        F: Fn(&mut Kernel<'_>) -> R + Send + Sync,
    {
        // Host-clear each participant's collective MPB region before any
        // core runs: the tree barrier's arrival/release flags are epoch
        // counters starting from zero, and a previous `run_on` on this
        // machine may have left higher values behind. Clearing from a
        // kernel would race an early-arriving tree child; clearing here is
        // deterministic (no simulated core has executed yet).
        for c in cores {
            let base = scc_hw::mpb::MpbArray::pa(*c, scc_hw::config::MPB_COLL_OFF);
            for w in 0..(scc_hw::config::MPB_COLL_BYTES as u32 / 4) {
                self.machine.inner().mpb.write(base + w * 4, 4, 0);
            }
        }
        let participants = Arc::new(cores.to_vec());
        let shared = Arc::clone(&self.shared);
        let n = cores.len();
        let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        self.machine.run_on(cores, move |hw| {
            let mut k = Kernel::boot(hw, Arc::clone(&shared), Arc::clone(&participants));
            let r = body(&mut k);
            // A real kernel keeps servicing interrupts (e.g. SVM ownership
            // requests) in its idle loop after the application exits; park
            // here responsively until every participant's body returned.
            done.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
            let done = Arc::clone(&done);
            k.wait_event("cluster teardown", move || {
                (done.load(std::sync::atomic::Ordering::Acquire) == n).then_some(((), 0))
            });
            r
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_arena_allocates_aligned() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let a = cl.shared().alloc_header(10, 4);
        let b = cl.shared().alloc_header(10, 64);
        assert_eq!(a % 4, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(a >= cl.machine().inner().map.shared_base());
    }

    #[test]
    fn frames_exclude_header() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let mach = cl.machine().inner();
        let hb = header_bytes(mach);
        let total: usize = cl.shared().frames.free_counts().iter().sum();
        assert_eq!(
            total,
            mach.map.shared_pages() - (hb as usize / 4096),
            "header pages must not be handed out as frames"
        );
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn header_arena_exhaustion_panics() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let hb = header_bytes(cl.machine().inner());
        cl.shared().alloc_header(hb + 4096, 4);
    }
}
