//! The per-core kernel: virtual memory with page-fault dispatch, interrupt
//! delivery, and the event-wait primitive that keeps a core responsive to
//! remote requests while it blocks.

use crate::cluster::ClusterShared;
use crate::frames::PrivateBump;
use crate::paging::{PageFlags, PageTable, Pte, PAGE_SIZE};
use crate::tlb::{Tlb, TlbSnapshot, TLB_ENTRIES};
use scc_hw::instr::EventKind;
use scc_hw::{CoreCtx, CoreId, MemAttr};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Kind of memory access, for fault reporting.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
}

/// A page-fault handler for a virtual address range (the SVM system
/// registers one for the SVM window).
pub trait FaultHandler: Send + Sync {
    /// Resolve the fault (map/upgrade the page). Returning `true` means
    /// "handled — retry the access"; `false` escalates to a kernel panic
    /// (an unhandled fault, e.g. a write to a read-only region, which the
    /// paper's §6.4 deliberately turns into a hard error to aid debugging).
    fn on_fault(&self, k: &mut Kernel<'_>, va: u32, access: Access) -> bool;

    /// Short name for panic messages.
    fn name(&self) -> &'static str {
        "anonymous"
    }
}

/// A kernel subsystem hook: receives interrupts and idle-loop turns.
pub trait KernelHook: Send + Sync {
    /// An IPI from `src` arrived (the GIC tells us who rang).
    fn on_ipi(&self, _k: &mut Kernel<'_>, _src: CoreId) {}

    /// One timer tick or idle-loop iteration: poll for deferred work.
    fn on_tick(&self, _k: &mut Kernel<'_>) {}

    /// Build a side-effect-free "is there work for this core?" probe used
    /// to wake the core out of blocking waits. The probe may only touch
    /// atomics (raw peeks), never the kernel.
    fn make_wake_probe(&self, _k: &Kernel<'_>) -> Option<Box<dyn Fn() -> bool + Send + Sync>> {
        None
    }
}

/// The kernel instance of one core for the duration of one cluster run.
pub struct Kernel<'a> {
    /// The hardware context (clock, caches, memory engine).
    pub hw: &'a mut CoreCtx,
    /// Cluster-wide shared state (frame allocators, header arena).
    pub shared: Arc<ClusterShared>,
    participants: Arc<Vec<CoreId>>,
    pt: PageTable,
    /// Software TLB memoizing page-table walks (host fast path; always
    /// coherent with `pt` via shootdowns in the PTE-mutation funnel).
    tlb: Tlb,
    /// Bumped on every PTE mutation; bulk accessors re-translate when it
    /// moves under them (an interrupt handler may remap mid-stream).
    pt_epoch: u64,
    fast_tlb: bool,
    fast_bulk: bool,
    /// Copy of `cfg.tick_cycles`: `poll_irqs` runs after every access and
    /// should not chase the machine `Arc` for a constant.
    tick_cycles: u64,
    private: PrivateBump,
    /// Sorted by `range.start`, non-overlapping; looked up by binary search.
    fault_handlers: Vec<(Range<u32>, Arc<dyn FaultHandler>)>,
    hooks: Vec<Arc<dyn KernelHook>>,
    probes: Vec<Box<dyn Fn() -> bool + Send + Sync>>,
    ext: HashMap<TypeId, Box<dyn Any + Send>>,
    last_tick: u64,
    in_irq: bool,
}

impl<'a> Kernel<'a> {
    /// Boot a kernel on this core: identity-map the private region and the
    /// MPB window, initialise the private allocator.
    pub fn boot(
        hw: &'a mut CoreCtx,
        shared: Arc<ClusterShared>,
        participants: Arc<Vec<CoreId>>,
    ) -> Self {
        let map = &hw.machine().map;
        let priv_base = map.private_base(hw.id());
        let priv_bytes = map.private_bytes();
        let mut pt = PageTable::new();
        // Private region: VA 0.. maps onto this core's private PA window.
        for off in (0..priv_bytes).step_by(PAGE_SIZE as usize) {
            pt.map(off, (priv_base + off) >> 12, PageFlags::private_rw());
        }
        // MPB window: identity map (VA == PA) with the MPBT memory type.
        let ncores = hw.machine().cfg.ncores;
        let mpb_bytes = (ncores * scc_hw::config::MPB_BYTES) as u32;
        for off in (0..mpb_bytes).step_by(PAGE_SIZE as usize) {
            let pa = crate::MPB_VA_BASE + off;
            pt.map(pa, pa >> 12, PageFlags::shared_rw());
        }
        let fast = hw.machine().cfg.host_fast;
        let tick_cycles = hw.machine().cfg.tick_cycles;
        Kernel {
            hw,
            shared,
            participants,
            pt,
            tlb: Tlb::new(),
            pt_epoch: 0,
            fast_tlb: fast.tlb,
            fast_bulk: fast.bulk,
            tick_cycles,
            private: PrivateBump::new(priv_base, priv_base + priv_bytes),
            fault_handlers: Vec::new(),
            hooks: Vec::new(),
            probes: Vec::new(),
            ext: HashMap::new(),
            last_tick: 0,
            in_irq: false,
        }
    }

    /// This core's id.
    #[inline]
    pub fn id(&self) -> CoreId {
        self.hw.id()
    }

    /// All cores participating in this cluster run.
    #[inline]
    pub fn participants(&self) -> &[CoreId] {
        &self.participants
    }

    /// Is the kernel currently inside an interrupt/idle-hook handler?
    /// Handlers cannot block responsively ([`Kernel::wait_event`] refuses
    /// nested kernel work), so subsystems use this to decide between a
    /// blocking operation and a deferred one.
    #[inline]
    pub fn in_irq(&self) -> bool {
        self.in_irq
    }

    /// This core's rank within the participant list.
    pub fn rank(&self) -> usize {
        self.participants
            .iter()
            .position(|c| *c == self.id())
            .expect("running core must be a participant")
    }

    /// Number of participating cores.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.participants.len()
    }

    // ------------------------------------------------------------------
    // Subsystem registration
    // ------------------------------------------------------------------

    /// Register a page-fault handler for a VA range. The list is kept
    /// sorted by range start (ranges must not overlap) so fault dispatch is
    /// a binary search rather than a linear scan.
    pub fn register_fault_handler(&mut self, range: Range<u32>, h: Arc<dyn FaultHandler>) {
        assert!(range.start < range.end, "empty fault-handler range");
        let pos = self
            .fault_handlers
            .partition_point(|(r, _)| r.start < range.start);
        if let Some((prev, _)) = pos.checked_sub(1).map(|p| &self.fault_handlers[p]) {
            assert!(prev.end <= range.start, "overlapping fault-handler ranges");
        }
        if let Some((next, _)) = self.fault_handlers.get(pos) {
            assert!(range.end <= next.start, "overlapping fault-handler ranges");
        }
        self.fault_handlers.insert(pos, (range, h));
    }

    /// Register an interrupt/idle hook; its wake probe (if any) is armed
    /// immediately.
    pub fn register_hook(&mut self, h: Arc<dyn KernelHook>) {
        if let Some(p) = h.make_wake_probe(self) {
            self.probes.push(p);
        }
        self.hooks.push(h);
    }

    /// Stash typed subsystem state in the kernel (mailbox queues, SVM
    /// bookkeeping). One instance per type.
    pub fn ext_put<T: Any + Send>(&mut self, v: T) {
        let old = self.ext.insert(TypeId::of::<T>(), Box::new(v));
        assert!(old.is_none(), "extension installed twice");
    }

    /// Temporarily take typed state out (take/operate/put-back pattern lets
    /// subsystem code hold `&mut` to both its state and the kernel).
    pub fn ext_take<T: Any + Send>(&mut self) -> T {
        *self
            .ext
            .remove(&TypeId::of::<T>())
            .unwrap_or_else(|| panic!("extension {} not installed", std::any::type_name::<T>()))
            .downcast::<T>()
            .expect("extension type mismatch")
    }

    /// Put typed state back after `ext_take`.
    pub fn ext_restore<T: Any + Send>(&mut self, v: T) {
        self.ext.insert(TypeId::of::<T>(), Box::new(v));
    }

    /// Is an extension of this type installed?
    pub fn ext_has<T: Any + Send>(&self) -> bool {
        self.ext.contains_key(&TypeId::of::<T>())
    }

    // ------------------------------------------------------------------
    // Paging (charged)
    // ------------------------------------------------------------------

    /// Read-only view of the page table.
    #[inline]
    pub fn page_table(&self) -> &PageTable {
        &self.pt
    }

    /// TLB shootdown + epoch bump; every PTE mutation must pass through
    /// here so cached translations can never go stale.
    #[inline]
    fn pte_mutated(&mut self, va: u32) {
        self.pt_epoch += 1;
        if self.tlb.invalidate_page(va >> 12) {
            self.hw.perf.tlb_shootdowns += 1;
            self.hw.trace(EventKind::TlbShootdown, va >> 12, 0);
        }
    }

    /// Install a mapping (charges one PTE update).
    pub fn map_page(&mut self, va: u32, pfn: u32, flags: PageFlags) {
        self.pt.map(va, pfn, flags);
        self.pte_mutated(va);
        self.hw.trace(EventKind::PageMap, va, pfn);
        let c = self.hw.machine().cfg.timing.pte_update;
        self.hw.advance(c);
    }

    /// Change mapping flags (charges one PTE update). Returns `false` if
    /// the page was not mapped.
    pub fn protect_page(&mut self, va: u32, flags: PageFlags) -> bool {
        let ok = self.pt.protect(va, flags);
        self.pte_mutated(va);
        self.hw.trace(EventKind::PageProtect, va, 0);
        let c = self.hw.machine().cfg.timing.pte_update;
        self.hw.advance(c);
        ok
    }

    /// Drop a mapping (charges one PTE update); returns the old PTE.
    pub fn unmap_page(&mut self, va: u32) -> Pte {
        let pte = self.pt.unmap(va);
        self.pte_mutated(va);
        self.hw.trace(EventKind::PageUnmap, va, 0);
        let c = self.hw.machine().cfg.timing.pte_update;
        self.hw.advance(c);
        pte
    }

    /// One coherent view of this core's software-TLB state — activity
    /// counters plus current occupancy. The single accessor replacing
    /// hand-picking `hw.perf.tlb_*` fields.
    pub fn tlb_snapshot(&self) -> TlbSnapshot {
        TlbSnapshot {
            hits: self.hw.perf.tlb_hits,
            misses: self.hw.perf.tlb_misses,
            shootdowns: self.hw.perf.tlb_shootdowns,
            live_entries: self.tlb.live_count(),
            capacity: TLB_ENTRIES,
        }
    }

    /// Allocate `n` pages of kernel-private memory; returns their VA.
    pub fn kalloc_pages(&mut self, n: u32) -> u32 {
        let pfn = self.private.alloc_pages(n);
        // Private memory is identity-mapped at boot: VA = PA - private_base.
        (pfn << 12) - self.hw.machine().map.private_base(self.id())
    }

    /// Zero a (shared) frame through word-granular uncached writes — the
    /// expensive part of "physical allocation of a page frame" in Table 1.
    pub fn zero_frame_uncached(&mut self, pfn: u32) {
        let base = pfn << 12;
        for off in (0..PAGE_SIZE).step_by(4) {
            self.hw.write(base + off, 4, 0, MemAttr::UNCACHED);
        }
    }

    // ------------------------------------------------------------------
    // Virtual memory access
    // ------------------------------------------------------------------

    /// Translate without faulting (always walks the page table).
    #[inline]
    pub fn try_translate(&self, va: u32, access: Access) -> Option<Pte> {
        let pte = self.pt.lookup(va);
        let f = pte.flags();
        if !f.present() || (access == Access::Write && !f.writable()) {
            return None;
        }
        Some(pte)
    }

    /// Translate through the software TLB, falling back to (and memoizing)
    /// the walk on a miss. Neither path charges simulated time — the walk
    /// never did — so the TLB is invisible to virtual clocks.
    #[inline]
    fn translate_fast(&mut self, va: u32, access: Access) -> Option<Pte> {
        if !self.fast_tlb {
            return self.try_translate(va, access);
        }
        let vpn = va >> 12;
        if let Some(pte) = self.tlb.lookup(vpn) {
            // A cached non-writable entry mirrors a non-writable PTE, but
            // take the walk path anyway so the miss/fault flow is uniform.
            if access == Access::Read || pte.flags().writable() {
                self.hw.perf.tlb_hits += 1;
                self.hw.trace(EventKind::TlbHit, vpn, 0);
                return Some(pte);
            }
        }
        self.hw.perf.tlb_misses += 1;
        self.hw.trace(EventKind::TlbMiss, vpn, 0);
        let pte = self.try_translate(va, access)?;
        self.tlb.insert(vpn, pte);
        Some(pte)
    }

    /// Read `len` (1..=8) bytes at virtual address `va`, faulting as needed.
    ///
    /// Interrupts are polled *after* the access so that a freshly resolved
    /// fault cannot be stolen (e.g. by an incoming SVM ownership request)
    /// before the faulting access retries.
    pub fn vread(&mut self, va: u32, len: usize) -> u64 {
        loop {
            if let Some(pte) = self.translate_fast(va, Access::Read) {
                let v = self.hw.read(pte.pa(va), len, pte.flags().attr());
                self.poll_irqs();
                return v;
            }
            self.handle_fault(va, Access::Read);
        }
    }

    /// Write the low `len` (1..=8) bytes of `val` at `va`, faulting as
    /// needed.
    pub fn vwrite(&mut self, va: u32, len: usize, val: u64) {
        loop {
            if let Some(pte) = self.translate_fast(va, Access::Write) {
                self.hw.write(pte.pa(va), len, val, pte.flags().attr());
                self.poll_irqs();
                return;
            }
            self.handle_fault(va, Access::Write);
        }
    }

    /// Bulk read of `n` elements of `elem` bytes starting at `va`,
    /// delivering each value to `sink(index, value)`.
    ///
    /// Simulated behaviour (faults, per-element hardware access, interrupt
    /// polling cadence) is exactly that of `n` individual `vread` calls;
    /// with the `bulk` host fast path on, the translation is reused across
    /// each page instead of being recomputed per element. If an interrupt
    /// handler mutates this core's page table mid-stream (SVM ownership
    /// migration, lazy-release invalidation), the epoch check forces a
    /// re-translation before the next element.
    pub fn vread_block(&mut self, va: u32, elem: usize, n: usize, mut sink: impl FnMut(usize, u64)) {
        assert!(elem.is_power_of_two() && elem <= 8, "elem must be 1/2/4/8");
        assert_eq!(va as usize % elem, 0, "bulk access must be element-aligned");
        if !self.fast_bulk {
            for i in 0..n {
                let v = self.vread(va + (i * elem) as u32, elem);
                sink(i, v);
            }
            return;
        }
        let mut i = 0usize;
        while i < n {
            let a = va + (i * elem) as u32;
            let pte = loop {
                if let Some(pte) = self.translate_fast(a, Access::Read) {
                    break pte;
                }
                self.handle_fault(a, Access::Read);
            };
            let attr = pte.flags().attr();
            let page_end = ((a >> 12) + 1) << 12;
            let last = n.min(i + (page_end - a) as usize / elem);
            let epoch = self.pt_epoch;
            while i < last {
                let v = self.hw.read(pte.pa(va + (i * elem) as u32), elem, attr);
                self.poll_irqs();
                sink(i, v);
                i += 1;
                if self.pt_epoch != epoch {
                    break; // a handler remapped something: re-translate
                }
            }
        }
    }

    /// Bulk write of `n` elements of `elem` bytes starting at `va`, pulling
    /// each value from `src(index)`. Mirror image of [`Self::vread_block`].
    pub fn vwrite_block(
        &mut self,
        va: u32,
        elem: usize,
        n: usize,
        mut src: impl FnMut(usize) -> u64,
    ) {
        assert!(elem.is_power_of_two() && elem <= 8, "elem must be 1/2/4/8");
        assert_eq!(va as usize % elem, 0, "bulk access must be element-aligned");
        if !self.fast_bulk {
            for i in 0..n {
                let v = src(i);
                self.vwrite(va + (i * elem) as u32, elem, v);
            }
            return;
        }
        let mut i = 0usize;
        while i < n {
            let a = va + (i * elem) as u32;
            let pte = loop {
                if let Some(pte) = self.translate_fast(a, Access::Write) {
                    break pte;
                }
                self.handle_fault(a, Access::Write);
            };
            let attr = pte.flags().attr();
            let page_end = ((a >> 12) + 1) << 12;
            let last = n.min(i + (page_end - a) as usize / elem);
            let epoch = self.pt_epoch;
            while i < last {
                let v = src(i);
                self.hw.write(pte.pa(va + (i * elem) as u32), elem, v, attr);
                self.poll_irqs();
                i += 1;
                if self.pt_epoch != epoch {
                    break; // a handler remapped something: re-translate
                }
            }
        }
    }

    /// Convenience typed accessors.
    pub fn vread_u32(&mut self, va: u32) -> u32 {
        self.vread(va, 4) as u32
    }
    pub fn vwrite_u32(&mut self, va: u32, v: u32) {
        self.vwrite(va, 4, v as u64)
    }
    pub fn vread_f64(&mut self, va: u32) -> f64 {
        f64::from_bits(self.vread(va, 8))
    }
    pub fn vwrite_f64(&mut self, va: u32, v: f64) {
        self.vwrite(va, 8, v.to_bits())
    }

    fn handle_fault(&mut self, va: u32, access: Access) {
        let c = self.hw.machine().cfg.timing.pagefault_entry;
        self.hw.advance(c);
        self.hw
            .trace(EventKind::PageFault, va, (access == Access::Write) as u32);
        // The list is sorted by start: the only candidate is the last range
        // starting at or below `va`.
        let idx = self.fault_handlers.partition_point(|(r, _)| r.start <= va);
        let handler = idx
            .checked_sub(1)
            .map(|p| &self.fault_handlers[p])
            .filter(|(r, _)| r.contains(&va))
            .map(|(_, h)| Arc::clone(h));
        match handler {
            Some(h) => {
                if !h.on_fault(self, va, access) {
                    panic!(
                        "core {}: unhandled {access:?} fault at {va:#x} (handler {})",
                        self.id(),
                        h.name()
                    );
                }
            }
            None => panic!(
                "core {}: {access:?} fault at {va:#x} with no registered handler",
                self.id()
            ),
        }
    }

    // ------------------------------------------------------------------
    // Interrupts and blocking
    // ------------------------------------------------------------------

    /// Poll for pending interrupts: GIC IPIs first, then the timer tick.
    /// Called implicitly by `vread`/`vwrite`/`wait_event`; cheap when idle.
    pub fn poll_irqs(&mut self) {
        if self.in_irq {
            return;
        }
        if self.hw.has_pending_ipi() {
            self.in_irq = true;
            let list = self.hw.claim_ipis();
            let c = self.hw.machine().cfg.timing.irq_entry;
            self.hw.advance(c);
            let hooks = self.hooks.clone();
            for (src, _stamp) in list {
                for h in &hooks {
                    h.on_ipi(self, src);
                }
            }
            self.in_irq = false;
        }
        let tick = self.tick_cycles;
        if self.hw.now().saturating_sub(self.last_tick) >= tick {
            self.last_tick = self.hw.now();
            self.run_idle_hooks();
        }
    }

    /// Run one "idle loop" iteration: every hook polls for deferred work.
    pub fn run_idle_hooks(&mut self) {
        if self.in_irq {
            return;
        }
        self.in_irq = true;
        let hooks = self.hooks.clone();
        for h in &hooks {
            h.on_tick(self);
        }
        self.in_irq = false;
    }

    /// Block until `cond` yields a value, while staying responsive: the core
    /// wakes whenever an IPI arrives or any registered wake probe fires,
    /// services the work (which may be a remote ownership request!), and
    /// re-evaluates `cond`.
    ///
    /// `cond` must be side-effect-free and use only raw peeks; the `u64` it
    /// returns is the event's cycle stamp.
    pub fn wait_event<T: Send>(
        &mut self,
        reason: &'static str,
        mut cond: impl FnMut() -> Option<(T, u64)> + Send,
    ) -> T {
        loop {
            self.poll_irqs();
            if let Some((v, stamp)) = cond() {
                self.hw.sync_to(stamp);
                return v;
            }
            // While already inside an interrupt handler, new kernel work
            // cannot be serviced (no nesting), so waking for it would
            // livelock — wait on `cond` alone in that case.
            let allow_work = !self.in_irq;
            let outcome = {
                let gic_pending = {
                    let mach = Arc::clone(self.hw.machine());
                    let me = self.id();
                    move || mach.gic.has_pending(me)
                };
                let probes = &self.probes;
                self.hw.wait_until(reason, || {
                    if let Some((v, stamp)) = cond() {
                        return Some((Some(v), stamp));
                    }
                    if allow_work && (gic_pending() || probes.iter().any(|p| p())) {
                        return Some((None, 0));
                    }
                    None
                })
            };
            match outcome {
                Some(v) => return v,
                None => {
                    // Woken for kernel work: poll_irqs handles IPIs at the
                    // top of the loop; probe-driven work (polling-mode
                    // mailboxes) is an idle-loop scan.
                    let c = self.hw.machine().cfg.timing.idle_loop;
                    self.hw.advance(c);
                    self.run_idle_hooks();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use scc_hw::SccConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn boot_maps_private_and_mpb() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(1, |k| {
            // Private VA 0 is mapped RW.
            assert!(k.try_translate(0, Access::Write).is_some());
            // MPB window mapped with MPBT.
            let pte = k.try_translate(crate::MPB_VA_BASE, Access::Write).unwrap();
            assert!(pte.flags().mpbt());
            // SVM window unmapped.
            assert!(k.try_translate(crate::SVM_VA_BASE, Access::Read).is_none());
        })
        .unwrap();
    }

    #[test]
    fn private_memory_roundtrip() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(1, |k| {
            let va = k.kalloc_pages(1);
            k.vwrite(va, 8, 0xAABB_CCDD_1122_3344);
            assert_eq!(k.vread(va, 8), 0xAABB_CCDD_1122_3344);
        })
        .unwrap();
    }

    #[test]
    fn private_memories_are_disjoint() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, |k| {
            let va = k.kalloc_pages(1);
            let me = k.id().idx() as u64;
            k.vwrite(va, 8, 0x1000 + me);
            // Both cores use the same VA; a barrier-free re-read must see
            // the own value (private regions are disjoint PAs).
            assert_eq!(k.vread(va, 8), 0x1000 + me);
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "no registered handler")]
    fn unhandled_fault_panics() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let _ = cl.run(1, |k| {
            k.vread(crate::SVM_VA_BASE, 4);
        });
    }

    struct CountingHandler(AtomicUsize);
    impl FaultHandler for CountingHandler {
        fn on_fault(&self, k: &mut Kernel<'_>, va: u32, _access: Access) -> bool {
            self.0.fetch_add(1, Ordering::Relaxed);
            // Map the faulting page to a shared frame.
            let pfn = k.shared.frames.alloc_near(k.id()).unwrap();
            k.map_page(va & !0xfff, pfn, PageFlags::shared_rw());
            true
        }
        fn name(&self) -> &'static str {
            "counting"
        }
    }

    #[test]
    fn fault_handler_maps_and_retries() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let handler = Arc::new(CountingHandler(AtomicUsize::new(0)));
        let h2 = Arc::clone(&handler);
        cl.run(1, move |k| {
            k.register_fault_handler(
                crate::SVM_VA_BASE..crate::SVM_VA_BASE + 0x10000,
                h2.clone(),
            );
            k.vwrite(crate::SVM_VA_BASE + 8, 4, 77);
            assert_eq!(k.vread(crate::SVM_VA_BASE + 8, 4), 77);
        })
        .unwrap();
        assert_eq!(handler.0.load(Ordering::Relaxed), 1, "one fault, then mapped");
    }

    struct IpiRecorder(AtomicUsize);
    impl KernelHook for IpiRecorder {
        fn on_ipi(&self, _k: &mut Kernel<'_>, src: CoreId) {
            self.0.fetch_add(100 + src.idx(), Ordering::Relaxed);
        }
    }

    #[test]
    fn ipi_dispatched_to_hooks() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let rec = Arc::new(IpiRecorder(AtomicUsize::new(0)));
        let rec2 = Arc::clone(&rec);
        cl.run(2, move |k| {
            k.register_hook(rec2.clone());
            if k.id().idx() == 0 {
                k.hw.send_ipi(CoreId::new(1)).unwrap();
            } else {
                // Wait until the IPI has been processed by our own hook.
                let r = rec2.clone();
                k.wait_event("ipi processed", move || {
                    (r.0.load(Ordering::Relaxed) != 0).then_some(((), 0))
                });
            }
        })
        .unwrap();
        assert_eq!(rec.0.load(Ordering::Relaxed), 100, "IPI from core 0 seen once");
    }

    #[test]
    fn ext_take_restore() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(1, |k| {
            k.ext_put::<Vec<u32>>(vec![1, 2]);
            assert!(k.ext_has::<Vec<u32>>());
            let mut v = k.ext_take::<Vec<u32>>();
            v.push(3);
            k.ext_restore(v);
            assert_eq!(k.ext_take::<Vec<u32>>(), vec![1, 2, 3]);
        })
        .unwrap();
    }

    #[test]
    fn bulk_accessors_roundtrip_and_count_tlb_hits() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(1, |k| {
            // Two pages of u64s, crossing a page boundary mid-stream.
            let va = k.kalloc_pages(2);
            let n = 2 * PAGE_SIZE as usize / 8;
            k.vwrite_block(va, 8, n, |i| (i as u64) * 3 + 1);
            let mut got = vec![0u64; n];
            k.vread_block(va, 8, n, |i, v| got[i] = v);
            for (i, v) in got.iter().enumerate() {
                assert_eq!(*v, (i as u64) * 3 + 1);
            }
            assert!(k.hw.perf.tlb_hits > 0, "private pages hit the TLB");
        })
        .unwrap();
    }

    #[test]
    fn bulk_matches_elementwise_values() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(1, |k| {
            let va = k.kalloc_pages(1);
            for i in 0..64u32 {
                k.vwrite(va + i * 4, 4, u64::from(i) * 7);
            }
            let mut got = vec![0u64; 64];
            k.vread_block(va, 4, 64, |i, v| got[i] = v);
            for (i, &g) in got.iter().enumerate() {
                assert_eq!(g, (i as u64) * 7);
            }
        })
        .unwrap();
    }

    #[test]
    fn fault_dispatch_picks_the_right_sorted_handler() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let low = Arc::new(CountingHandler(AtomicUsize::new(0)));
        let high = Arc::new(CountingHandler(AtomicUsize::new(0)));
        let (l2, h2) = (Arc::clone(&low), Arc::clone(&high));
        cl.run(1, move |k| {
            // Register out of order; dispatch must still bisect correctly.
            let base = crate::SVM_VA_BASE;
            k.register_fault_handler(base + 0x20000..base + 0x30000, h2.clone());
            k.register_fault_handler(base..base + 0x10000, l2.clone());
            k.vwrite(base + 0x100, 4, 1); // low range
            k.vwrite(base + 0x20100, 4, 2); // high range
        })
        .unwrap();
        assert_eq!(low.0.load(Ordering::Relaxed), 1);
        assert_eq!(high.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "no registered handler")]
    fn fault_in_gap_between_handlers_panics() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let h = Arc::new(CountingHandler(AtomicUsize::new(0)));
        let _ = cl.run(1, move |k| {
            let base = crate::SVM_VA_BASE;
            k.register_fault_handler(base..base + 0x10000, h.clone());
            k.register_fault_handler(base + 0x20000..base + 0x30000, h.clone());
            k.vread(base + 0x18000, 4); // in the gap
        });
    }

    #[test]
    #[should_panic(expected = "overlapping fault-handler ranges")]
    fn overlapping_handler_ranges_rejected() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let h = Arc::new(CountingHandler(AtomicUsize::new(0)));
        let _ = cl.run(1, move |k| {
            let base = crate::SVM_VA_BASE;
            k.register_fault_handler(base..base + 0x10000, h.clone());
            k.register_fault_handler(base + 0x8000..base + 0x18000, h.clone());
        });
    }

    #[test]
    fn rank_and_participants() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let cores = [CoreId::new(30), CoreId::new(0)];
        cl.run_on(&cores, |k| {
            assert_eq!(k.nranks(), 2);
            if k.id().idx() == 30 {
                assert_eq!(k.rank(), 0);
            } else {
                assert_eq!(k.rank(), 1);
            }
        })
        .unwrap();
    }
}
