//! Physical frame allocators.
//!
//! * [`SharedFrames`] manages the shared off-die region with one free list
//!   per memory controller, so a page can be allocated "near" a core —
//!   the substrate of the paper's affinity-on-first-touch policy (§6.3).
//! * [`PrivateBump`] is the trivial per-core allocator for kernel-private
//!   pages (page tables, buffers).

use parking_lot::Mutex;
use scc_hw::machine::MachineInner;
use scc_hw::ram::Backing;
use scc_hw::topology::{CoreId, Topology};

/// Page-frame number (physical address >> 12).
pub type Pfn = u32;

/// Allocator for the shared off-die region, with one free list per memory
/// controller of the configured topology.
pub struct SharedFrames {
    topo: Topology,
    lists: Vec<Mutex<Vec<Pfn>>>,
}

impl SharedFrames {
    /// Build from the machine's memory map: every page of the shared region
    /// goes onto the free list of the controller it physically lives behind.
    /// The first `reserve_prefix_bytes` of the region (system header) are
    /// excluded.
    pub fn new(mach: &MachineInner, reserve_prefix_bytes: u32) -> Self {
        assert_eq!(reserve_prefix_bytes % 4096, 0);
        let topo = mach.cfg.topo;
        let mut lists = Vec::with_capacity(topo.num_mcs());
        lists.resize_with(topo.num_mcs(), || Mutex::new(Vec::new()));
        let base = mach.map.shared_base();
        let pages = mach.map.shared_pages();
        for p in (reserve_prefix_bytes / 4096) as usize..pages {
            let pa = base + (p as u32) * 4096;
            let Backing::Ram { mc } = mach.map.resolve(pa) else {
                unreachable!("shared region must be RAM");
            };
            lists[mc].lock().push(pa >> 12);
        }
        // Pop order: lowest frame first.
        for l in &lists {
            l.lock().reverse();
        }
        SharedFrames { topo, lists }
    }

    /// Number of memory controllers (free lists).
    pub fn num_mcs(&self) -> usize {
        self.lists.len()
    }

    /// Allocate a frame behind controller `mc`, falling back to the other
    /// controllers if that list is empty.
    pub fn alloc_at(&self, mc: usize) -> Option<Pfn> {
        if let Some(pfn) = self.lists[mc].lock().pop() {
            return Some(pfn);
        }
        for other in 0..self.lists.len() {
            if other != mc {
                if let Some(pfn) = self.lists[other].lock().pop() {
                    return Some(pfn);
                }
            }
        }
        None
    }

    /// Allocate a frame near `core` (its nearest controller — the quadrant
    /// rule on the SCC preset).
    pub fn alloc_near(&self, core: CoreId) -> Option<Pfn> {
        self.alloc_at(self.topo.nearest_mc(core))
    }

    /// Return a frame to its home controller's free list.
    pub fn free(&self, mach: &MachineInner, pfn: Pfn) {
        let Backing::Ram { mc } = mach.map.resolve(pfn << 12) else {
            panic!("freeing a non-RAM frame {pfn:#x}");
        };
        self.lists[mc].lock().push(pfn);
    }

    /// Remaining free frames per controller (diagnostic).
    pub fn free_counts(&self) -> Vec<usize> {
        self.lists.iter().map(|l| l.lock().len()).collect()
    }
}

/// Bump allocator over one core's private region.
///
/// `base_pa` is the first free physical byte (after anything boot reserved);
/// private frames are never returned.
pub struct PrivateBump {
    next: u32,
    end: u32,
}

impl PrivateBump {
    pub fn new(base_pa: u32, end_pa: u32) -> Self {
        PrivateBump {
            next: (base_pa + 4095) & !4095,
            end: end_pa,
        }
    }

    /// Allocate `n` contiguous private frames; panics when private memory
    /// is exhausted (a kernel OOM).
    pub fn alloc_pages(&mut self, n: u32) -> Pfn {
        let pa = self.next;
        let bytes = n * 4096;
        assert!(
            pa + bytes <= self.end,
            "private memory exhausted: want {n} pages at {pa:#x}, end {:#x}",
            self.end
        );
        self.next = pa + bytes;
        pa >> 12
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u32 {
        self.end - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::{Machine, SccConfig};

    #[test]
    fn shared_frames_cover_whole_region() {
        let m = Machine::new(SccConfig::small()).unwrap();
        let f = SharedFrames::new(m.inner(), 0);
        let total: usize = f.free_counts().iter().sum();
        assert_eq!(total, m.inner().map.shared_pages());
        // Evenly striped over the four controllers.
        let per = m.inner().map.shared_pages() / 4;
        assert!(f.free_counts().iter().all(|&c| c == per));
    }

    #[test]
    fn alloc_near_prefers_quadrant() {
        let m = Machine::new(SccConfig::small()).unwrap();
        let f = SharedFrames::new(m.inner(), 0);
        let pfn = f.alloc_near(CoreId::new(47)).unwrap(); // quadrant mc3
        let Backing::Ram { mc } = m.inner().map.resolve(pfn << 12) else {
            panic!()
        };
        assert_eq!(mc, 3);
    }

    #[test]
    fn alloc_falls_back_when_exhausted() {
        let m = Machine::new(SccConfig::small()).unwrap();
        let f = SharedFrames::new(m.inner(), 0);
        let per_mc = m.inner().map.shared_pages() / 4;
        for _ in 0..per_mc {
            f.alloc_at(0).unwrap();
        }
        assert_eq!(f.free_counts()[0], 0);
        // Next allocation near an mc0 core falls back to another list.
        assert!(f.alloc_near(CoreId::new(0)).is_some());
    }

    #[test]
    fn free_returns_to_home_list() {
        let m = Machine::new(SccConfig::small()).unwrap();
        let f = SharedFrames::new(m.inner(), 0);
        let before = f.free_counts();
        let pfn = f.alloc_at(2).unwrap();
        assert_eq!(f.free_counts()[2], before[2] - 1);
        f.free(m.inner(), pfn);
        assert_eq!(f.free_counts(), before);
    }

    #[test]
    fn private_bump_allocates_and_exhausts() {
        let mut b = PrivateBump::new(0x1000, 0x5000);
        assert_eq!(b.alloc_pages(2), 1);
        assert_eq!(b.alloc_pages(1), 3);
        assert_eq!(b.remaining(), 4096);
        assert_eq!(b.alloc_pages(1), 4);
    }

    #[test]
    #[should_panic(expected = "private memory exhausted")]
    fn private_bump_oom_panics() {
        let mut b = PrivateBump::new(0, 0x2000);
        b.alloc_pages(3);
    }
}
