//! Kernel-level collective primitives over uncached shared memory.
//!
//! The RCCE library and the SVM system both need a bootstrap barrier that
//! works before their own (MPB-based) machinery is initialised. This one
//! uses a sense-reversing counter in the shared header, serialised by an
//! SCC test-and-set register, and stays responsive to kernel work (a core
//! waiting here still answers ownership requests).

use crate::kernel::Kernel;
use scc_hw::MemAttr;

/// Barrier word layout: `count: u32, sense: u32, stamp: u64` (16 bytes).
const BARRIER_BYTES: u32 = 16;

/// A sense-reversing barrier over all participants of the cluster run.
///
/// `name` selects the barrier instance; every participant must call with
/// the same name. The test-and-set register of participant 0's core
/// serialises the counter update.
pub fn ram_barrier(k: &mut Kernel<'_>, name: &str) {
    let n = k.nranks() as u64;
    if n == 1 {
        return;
    }
    // The header arena is a host-side bump allocator; pin the (first)
    // allocation of this barrier's words to the deterministic election
    // order under the parallel engine.
    k.hw.host_order_point();
    let pa = k
        .shared
        .named_header(&format!("kbarrier.{name}"), BARRIER_BYTES, 32);
    let reg = k.participants()[0];

    k.hw.tas_lock(reg);
    let count = k.hw.read(pa, 4, MemAttr::UNCACHED) + 1;
    let sense = k.hw.read(pa + 4, 4, MemAttr::UNCACHED);
    if count == n {
        // Last arriver: reset the counter and flip the sense. Its clock is
        // already past every earlier arrival (the TAS release stamps carry
        // the ordering), so the release stamp is the barrier's exit time.
        k.hw.write(pa, 4, 0, MemAttr::UNCACHED);
        let now = k.hw.now();
        k.hw.write(pa + 8, 8, now, MemAttr::UNCACHED);
        k.hw.write(pa + 4, 4, sense ^ 1, MemAttr::UNCACHED);
        k.hw.tas_unlock(reg);
    } else {
        k.hw.write(pa, 4, count, MemAttr::UNCACHED);
        k.hw.tas_unlock(reg);
        let mach = std::sync::Arc::clone(k.hw.machine());
        k.wait_event("barrier release", move || {
            if mach.ram.read(pa + 4, 4) != sense {
                Some(((), mach.ram.read(pa + 8, 8)))
            } else {
                None
            }
        });
        // Observing the flipped sense costs one uncached read.
        let c = k.hw.machine().cfg.timing.ddr_word_cost(2);
        k.hw.advance(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use scc_hw::SccConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn barrier_orders_phases() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let phase1 = AtomicU64::new(0);
        cl.run(4, |k| {
            phase1.fetch_add(1, Ordering::Relaxed);
            ram_barrier(k, "t1");
            assert_eq!(
                phase1.load(Ordering::Relaxed),
                4,
                "no core may pass before all arrived"
            );
        })
        .unwrap();
    }

    #[test]
    fn barrier_reusable() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(3, |k| {
            for _ in 0..10 {
                ram_barrier(k, "reuse");
            }
        })
        .unwrap();
    }

    #[test]
    fn barrier_single_core_noop() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(1, |k| {
            let t0 = k.hw.now();
            ram_barrier(k, "solo");
            assert_eq!(k.hw.now(), t0);
        })
        .unwrap();
    }

    #[test]
    fn barrier_exit_clocks_aligned() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(4, |k| {
                // Skew arrival times heavily.
                k.hw.advance(k.rank() as u64 * 100_000);
                ram_barrier(k, "skew");
                k.hw.now()
            })
            .unwrap();
        let clocks: Vec<u64> = res.iter().map(|r| r.result).collect();
        let max = *clocks.iter().max().unwrap();
        let min = *clocks.iter().min().unwrap();
        assert!(
            max - min < 10_000,
            "exit clocks must be close together: {clocks:?}"
        );
        assert!(min >= 300_000, "nobody may leave before the last arrival");
    }
}
