//! Kernel-level collective primitives.
//!
//! The RCCE library and the SVM system both need a bootstrap barrier that
//! works before their own machinery is initialised, and every SVM app
//! synchronises through it (`SvmCtx::barrier`). Two algorithms implement
//! it, selected by [`CollMode`] on the machine configuration (`SCC_COLL`
//! environment variable):
//!
//! * [`flat_ram_barrier`] — the original rendezvous: a sense-reversing
//!   counter in off-die shared RAM, serialised by a test-and-set
//!   register. Every participant takes an off-die round trip through one
//!   word, so the cost grows linearly with the core count (BENCH_scale:
//!   29 → 792 µs from 48 → 512 cores).
//! * [`tree_ram_barrier`] — the default: participants combine over a
//!   topology-derived fan-in tree ([`CollTree`], DESIGN.md §12) of on-die
//!   MPB flag lines. Cores gather within their tile, tile leaders within
//!   their memory-controller quadrant, quadrant leaders at the root; the
//!   release retraces the tree downward. Off-die RAM is touched by the
//!   root alone (one publication write per barrier), so the cost grows
//!   with the tree depth — logarithmic, not linear.
//!
//! Both stay responsive to kernel work: a core waiting here still answers
//! ownership requests and mailbox traffic through [`Kernel::wait_event`].

use crate::kernel::Kernel;
use scc_hw::coll::{CollLevel, CollTree};
use scc_hw::mpb::MpbArray;
use scc_hw::{CollMode, CoreId, MemAttr};
#[cfg(feature = "trace")]
use scc_hw::EventKind;
use std::sync::Arc;

/// Barrier word layout: `count: u32, sense: u32, stamp: u64` (16 bytes).
/// The tree path reuses the same shape as `epoch: u32, pad: u32,
/// stamp: u64` for the root's publication word.
const BARRIER_BYTES: u32 = 16;

/// A barrier over all participants of the cluster run.
///
/// `name` selects the barrier instance; every participant must call with
/// the same name, and all participants must pass their barriers in the
/// same order (it is a barrier — anything else deadlocks by definition).
/// Dispatches on the configured [`CollMode`].
pub fn ram_barrier(k: &mut Kernel<'_>, name: &str) {
    match k.hw.machine().cfg.coll {
        CollMode::Flat => flat_ram_barrier(k, name),
        CollMode::Tree => tree_ram_barrier(k, name),
    }
}

/// The original flat sense-reversing barrier over one off-die word,
/// serialised by the test-and-set register of participant 0's core.
pub fn flat_ram_barrier(k: &mut Kernel<'_>, name: &str) {
    let n = k.nranks() as u64;
    if n == 1 {
        return;
    }
    // The header arena is a host-side bump allocator; pin the (first)
    // allocation of this barrier's words to the deterministic election
    // order under the parallel engine.
    k.hw.host_order_point();
    let pa = k
        .shared
        .named_header(&format!("kbarrier.{name}"), BARRIER_BYTES, 32);
    let reg = k.participants()[0];

    k.hw.tas_lock(reg);
    let count = k.hw.read(pa, 4, MemAttr::UNCACHED) + 1;
    let sense = k.hw.read(pa + 4, 4, MemAttr::UNCACHED);
    if count == n {
        // Last arriver: reset the counter and flip the sense. Its clock is
        // already past every earlier arrival (the TAS release stamps carry
        // the ordering), so the release stamp is the barrier's exit time.
        k.hw.write(pa, 4, 0, MemAttr::UNCACHED);
        let now = k.hw.now();
        k.hw.write(pa + 8, 8, now, MemAttr::UNCACHED);
        k.hw.write(pa + 4, 4, sense ^ 1, MemAttr::UNCACHED);
        k.hw.tas_unlock(reg);
    } else {
        k.hw.write(pa, 4, count, MemAttr::UNCACHED);
        k.hw.tas_unlock(reg);
        let mach = std::sync::Arc::clone(k.hw.machine());
        k.wait_event("barrier release", move || {
            if mach.ram.read(pa + 4, 4) != sense {
                Some(((), mach.ram.read(pa + 8, 8)))
            } else {
                None
            }
        });
        // Observing the flipped sense costs one uncached read.
        let c = k.hw.machine().cfg.timing.ddr_word_cost(2);
        k.hw.advance(c);
    }
}

/// Per-core state of the tree barrier, kept as a kernel extension: the
/// fan-in tree over this run's participants (every core builds the same
/// one — construction is deterministic), the barrier epoch, and the
/// root's off-die publication word.
struct CollState {
    tree: Arc<CollTree>,
    epoch: u32,
    /// RAM word the root publishes each completed epoch to (`epoch: u32,
    /// pad: u32, stamp: u64`) — the only off-die touch of the tree path.
    publish_pa: u32,
}

/// FNV-1a, for tagging arrival/release flags with the barrier name so a
/// mismatched collective (cores passing differently-named barriers in
/// different orders) trips an assertion instead of silently pairing up.
fn name_tag(name: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in name.bytes() {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h
}

fn coll_state(k: &mut Kernel<'_>) -> CollState {
    if !k.ext_has::<CollState>() {
        let topo = *k.hw.topo();
        let tree = Arc::new(CollTree::build(&topo, k.participants(), 0));
        // Key the publication word by the participant set so distinct
        // `run_on` core sets on one machine get distinct words.
        let mut set = 0u32;
        for c in k.participants() {
            set = (set ^ (c.idx() as u32 + 1)).wrapping_mul(0x0100_0193);
        }
        k.hw.host_order_point();
        let publish_pa =
            k.shared
                .named_header(&format!("kcoll.{set:08x}"), BARRIER_BYTES, 32);
        k.ext_put(CollState {
            tree,
            epoch: 0,
            publish_pa,
        });
    }
    k.ext_take::<CollState>()
}

/// Timed write of one collective flag line (`value: u32, aux: u32,
/// stamp: u64`) in `owner`'s MPB. The line goes out in one WCB flush.
fn write_coll_flag(k: &mut Kernel<'_>, owner: CoreId, off: usize, value: u32, aux: u32) {
    let pa = MpbArray::pa(owner, off);
    let now = k.hw.now();
    k.hw.write(pa + 8, 8, now, MemAttr::MPB);
    k.hw.write(pa + 4, 4, aux as u64, MemAttr::MPB);
    k.hw.write(pa, 4, value as u64, MemAttr::MPB);
    k.hw.flush_wcb();
}

/// Wait until the flag line at `off` in **my own** MPB reaches `epoch`,
/// then read it through the cache path and return `(aux, stamp)`.
///
/// The line's single possible writer is `writer` (a tree neighbour), so
/// the deciding raw peek demotes through the parallel engine's per-peer
/// sequence check instead of a global order point — the same wiring the
/// mailbox uses for its slot probes.
fn wait_coll_flag(
    k: &mut Kernel<'_>,
    writer: CoreId,
    off: usize,
    epoch: u32,
    reason: &'static str,
) -> (u32, u64) {
    let me = k.id();
    let pa = MpbArray::pa(me, off);
    let mach = Arc::clone(k.hw.machine());
    // Cost of observing the flag in my own MPB (zero hops).
    let cost = k.hw.machine().cfg.timing.mpb_cost(0);
    k.hw.host_order_point_peer(writer);
    if (mach.mpb.read(pa, 4) as u32) < epoch {
        // Not yet arrived: park responsively. The blocking path
        // synchronises with the election order on its own.
        k.wait_event(reason, move || {
            ((mach.mpb.read(pa, 4) as u32) >= epoch)
                .then(|| ((), mach.mpb.read(pa + 8, 8) + cost))
        });
    } else {
        let arrival = mach.mpb.read(pa + 8, 8) + cost;
        k.hw.sync_to(arrival);
    }
    // Re-read through the cache path, fresh after CL1INVMB.
    k.hw.cl1invmb();
    let value = k.hw.read(pa, 4, MemAttr::MPB) as u32;
    let aux = k.hw.read(pa + 4, 4, MemAttr::MPB) as u32;
    let stamp = k.hw.read(pa + 8, 8, MemAttr::MPB);
    debug_assert_eq!(value, epoch, "collective flag overtook the epoch");
    (aux, stamp)
}

fn bump_arrive(k: &mut Kernel<'_>, level: CollLevel) {
    let c = &mut k.hw.perf;
    match level {
        CollLevel::Tile => c.coll_arrive_tile += 1,
        CollLevel::Quad => c.coll_arrive_quad += 1,
        CollLevel::Root => c.coll_arrive_root += 1,
    }
}

fn bump_release(k: &mut Kernel<'_>, level: CollLevel) {
    let c = &mut k.hw.perf;
    match level {
        CollLevel::Tile => c.coll_release_tile += 1,
        CollLevel::Quad => c.coll_release_quad += 1,
        CollLevel::Root => c.coll_release_root += 1,
    }
}

/// The MPB-tree barrier (DESIGN.md §12).
///
/// Per epoch, rank `r` with children `c₁..cₖ` (deterministic tree order):
///
/// 1. **Gather** — wait for each child's arrival line in `r`'s own MPB to
///    reach the epoch (children write their parent's line `slot(cᵢ)`).
/// 2. **Arrive** — a non-root writes the epoch into its own slot of its
///    parent's MPB, then waits on its release line; the root instead
///    publishes the completed epoch (plus its cycle stamp) to the off-die
///    word — the barrier's only RAM access.
/// 3. **Release** — after its own release arrives (root: immediately),
///    `r` writes the epoch into each child's release line.
///
/// Epochs make every line reusable without resets; `Cluster::run_on`
/// host-clears the collective region of each participant before the run,
/// so a fresh participant set never observes a previous run's flags.
pub fn tree_ram_barrier(k: &mut Kernel<'_>, name: &str) {
    if k.nranks() == 1 {
        return;
    }
    let mut st = coll_state(k);
    st.epoch += 1;
    let epoch = st.epoch;
    let tree = Arc::clone(&st.tree);
    let me = k.rank();
    let tag = name_tag(name);

    // Gather: children arrive in deterministic tree order. A later child
    // arriving first simply parks its flag; nothing waits on us yet.
    for &c in tree.children(me) {
        let (aux, _) = wait_coll_flag(
            k,
            tree.core(c),
            CollTree::arrival_off(tree.child_slot(c)),
            epoch,
            "tree barrier arrival",
        );
        assert_eq!(
            aux,
            tag,
            "collective mismatch: rank {c} arrived at a differently-named \
             barrier (epoch {epoch}, expected {name:?})"
        );
        #[cfg(feature = "trace")]
        k.hw.trace3(
            EventKind::CollArrive,
            tree.core(c).idx() as u32,
            epoch,
            tree.level(c) as u32,
        );
        bump_arrive(k, tree.level(c));
    }

    if let Some(p) = tree.parent(me) {
        // Arrive at the parent, then wait for the downward release.
        write_coll_flag(
            k,
            tree.core(p),
            CollTree::arrival_off(tree.child_slot(me)),
            epoch,
            tag,
        );
        k.hw.perf.coll_hops += tree.parent_hops(me) as u64;
        let (aux, _) = wait_coll_flag(
            k,
            tree.core(p),
            CollTree::release_off(),
            epoch,
            "tree barrier release",
        );
        assert_eq!(aux, tag, "collective mismatch on release (epoch {epoch})");
    } else {
        // Root: every rank has arrived (transitively). Publish the epoch
        // and its stamp to the off-die word — the tree barrier's single
        // RAM touch, and the progress record tools can read back.
        k.hw.write(st.publish_pa, 4, epoch as u64, MemAttr::UNCACHED);
        let now = k.hw.now();
        k.hw.write(st.publish_pa + 8, 8, now, MemAttr::UNCACHED);
    }

    // Release the subtree.
    for &c in tree.children(me) {
        write_coll_flag(k, tree.core(c), CollTree::release_off(), epoch, tag);
        k.hw.perf.coll_hops += tree.parent_hops(c) as u64;
        #[cfg(feature = "trace")]
        k.hw.trace3(
            EventKind::CollRelease,
            tree.core(c).idx() as u32,
            epoch,
            tree.level(c) as u32,
        );
        bump_release(k, tree.level(c));
    }
    k.hw.perf.coll_barriers += 1;
    k.ext_restore(st);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use scc_hw::{SccConfig, Topology};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cfg(coll: CollMode) -> SccConfig {
        SccConfig {
            coll,
            ..SccConfig::small()
        }
    }

    fn barrier_orders_phases_with(coll: CollMode) {
        let cl = Cluster::new(cfg(coll)).unwrap();
        let phase1 = AtomicU64::new(0);
        cl.run(4, |k| {
            phase1.fetch_add(1, Ordering::Relaxed);
            ram_barrier(k, "t1");
            assert_eq!(
                phase1.load(Ordering::Relaxed),
                4,
                "no core may pass before all arrived"
            );
        })
        .unwrap();
    }

    #[test]
    fn barrier_orders_phases() {
        barrier_orders_phases_with(CollMode::Tree);
        barrier_orders_phases_with(CollMode::Flat);
    }

    fn barrier_reusable_with(coll: CollMode) {
        let cl = Cluster::new(cfg(coll)).unwrap();
        cl.run(3, |k| {
            for _ in 0..10 {
                ram_barrier(k, "reuse");
            }
        })
        .unwrap();
    }

    #[test]
    fn barrier_reusable() {
        barrier_reusable_with(CollMode::Tree);
        barrier_reusable_with(CollMode::Flat);
    }

    #[test]
    fn barrier_single_core_noop() {
        for coll in [CollMode::Tree, CollMode::Flat] {
            let cl = Cluster::new(cfg(coll)).unwrap();
            cl.run(1, |k| {
                let t0 = k.hw.now();
                ram_barrier(k, "solo");
                assert_eq!(k.hw.now(), t0);
            })
            .unwrap();
        }
    }

    fn barrier_exit_clocks_aligned_with(coll: CollMode) {
        let cl = Cluster::new(cfg(coll)).unwrap();
        let res = cl
            .run(4, |k| {
                // Skew arrival times heavily.
                k.hw.advance(k.rank() as u64 * 100_000);
                ram_barrier(k, "skew");
                k.hw.now()
            })
            .unwrap();
        let clocks: Vec<u64> = res.iter().map(|r| r.result).collect();
        let max = *clocks.iter().max().unwrap();
        let min = *clocks.iter().min().unwrap();
        assert!(
            max - min < 10_000,
            "exit clocks must be close together ({coll:?}): {clocks:?}"
        );
        assert!(
            min >= 300_000,
            "nobody may leave before the last arrival ({coll:?})"
        );
    }

    #[test]
    fn barrier_exit_clocks_aligned() {
        barrier_exit_clocks_aligned_with(CollMode::Tree);
        barrier_exit_clocks_aligned_with(CollMode::Flat);
    }

    #[test]
    fn tree_barrier_skips_offdie_ram_except_at_root() {
        // The tree path's point: per barrier, exactly one core (the root)
        // touches off-die RAM, and only with writes.
        let cl = Cluster::new(cfg(CollMode::Tree)).unwrap();
        let res = cl
            .run(8, |k| {
                // Let cluster/SVM bootstrap costs settle before sampling.
                ram_barrier(k, "warm");
                let before = (k.hw.perf.ram_reads, k.hw.perf.ram_writes);
                for _ in 0..5 {
                    ram_barrier(k, "probe");
                }
                let after = (k.hw.perf.ram_reads, k.hw.perf.ram_writes);
                (
                    k.rank(),
                    after.0 - before.0,
                    after.1 - before.1,
                    k.hw.perf.coll_barriers,
                )
            })
            .unwrap();
        for r in &res {
            let (rank, reads, writes, barriers) = r.result;
            assert!(barriers >= 6);
            assert_eq!(reads, 0, "rank {rank} read off-die RAM in a tree barrier");
            if rank == 0 {
                assert!(writes > 0, "the root must publish the epoch");
            } else {
                assert_eq!(writes, 0, "rank {rank} wrote off-die RAM");
            }
        }
    }

    #[test]
    fn tree_barrier_counters_cover_every_edge() {
        let cl = Cluster::new(cfg(CollMode::Tree)).unwrap();
        let n = 12;
        let res = cl
            .run(n, |k| {
                ram_barrier(k, "count");
                let c = &k.hw.perf;
                (
                    c.coll_arrive_tile + c.coll_arrive_quad + c.coll_arrive_root,
                    c.coll_release_tile + c.coll_release_quad + c.coll_release_root,
                )
            })
            .unwrap();
        let arrivals: u64 = res.iter().map(|r| r.result.0).sum();
        let releases: u64 = res.iter().map(|r| r.result.1).sum();
        // A tree over n ranks has n-1 edges; each edge carries exactly one
        // arrival and one release per barrier.
        assert_eq!(arrivals, (n - 1) as u64);
        assert_eq!(releases, (n - 1) as u64);
    }

    #[test]
    fn tree_barrier_on_sparse_core_subset() {
        // run_on with scattered cores: the tree must follow ranks, not
        // core ids.
        let cl = Cluster::new(cfg(CollMode::Tree)).unwrap();
        let cores = [30usize, 0, 47, 1, 31, 16]
            .map(scc_hw::CoreId::new)
            .to_vec();
        let phase = AtomicU64::new(0);
        cl.run_on(&cores, |k| {
            phase.fetch_add(1, Ordering::Relaxed);
            ram_barrier(k, "sparse");
            assert_eq!(phase.load(Ordering::Relaxed), 6);
        })
        .unwrap();
    }

    #[test]
    fn tree_barrier_survives_repeated_runs() {
        // A second run_on on the same machine reuses the MPB lines; the
        // host-side pre-clear plus fresh epochs must keep it correct.
        let cl = Cluster::new(cfg(CollMode::Tree)).unwrap();
        for _ in 0..3 {
            let phase = AtomicU64::new(0);
            cl.run(5, |k| {
                phase.fetch_add(1, Ordering::Relaxed);
                ram_barrier(k, "again");
                assert_eq!(phase.load(Ordering::Relaxed), 5);
            })
            .unwrap();
        }
        // And with a different (overlapping) participant set.
        let cores = [2usize, 7, 11].map(scc_hw::CoreId::new).to_vec();
        cl.run_on(&cores, |k| {
            for _ in 0..4 {
                ram_barrier(k, "subset");
            }
        })
        .unwrap();
    }

    #[test]
    fn tree_barrier_on_mesh8x8_all_cores() {
        let topo = Topology::mesh8x8();
        let cl = Cluster::new(SccConfig {
            coll: CollMode::Tree,
            ..SccConfig::small_with(topo)
        })
        .unwrap();
        let phase = AtomicU64::new(0);
        let n = topo.num_cores();
        cl.run(n, |k| {
            phase.fetch_add(1, Ordering::Relaxed);
            ram_barrier(k, "mesh");
            assert_eq!(phase.load(Ordering::Relaxed), n as u64);
            k.hw.now()
        })
        .unwrap();
    }

    #[test]
    fn name_tag_distinguishes_names() {
        assert_ne!(name_tag("svm.barrier"), name_tag("rcce.init"));
        assert_eq!(name_tag("x"), name_tag("x"));
    }
}
