//! # scc-kernel — the per-core MetalSVM kernel layer
//!
//! MetalSVM runs one instance of a small, self-developed monolithic kernel on
//! every SCC core; the SVM system and the mailbox-based communication layer
//! are kernel subsystems. This crate reproduces that layer on top of the
//! [`scc_hw`] machine model:
//!
//! * **paging** — per-core two-level page tables with the x86 `PWT` bit plus
//!   the SCC's `MPBT` extension bit; every core owns a *private* copy of the
//!   tables, exactly as §6.3 of the paper describes.
//! * **frames** — a private-memory bump allocator per core and a shared
//!   frame allocator with per-memory-controller free lists, enabling the
//!   NUMA-style *allocate near the first toucher* policy.
//! * **kernel** — the [`Kernel`] object: virtual memory access
//!   (`vread`/`vwrite`) with page-fault dispatch to registered handlers,
//!   interrupt polling (timer tick + GIC IPIs) delivered to registered
//!   hooks, and `wait_event`, the blocking primitive that keeps servicing
//!   interrupts while an application waits (this is what lets a page owner
//!   answer ownership requests while it sits in an application barrier).
//! * **cluster** — collective boot: run one kernel per participating core
//!   against a shared [`scc_hw::Machine`].

pub mod cluster;
pub mod collective;
pub mod frames;
pub mod kernel;
pub mod paging;
pub mod tlb;

pub use cluster::{Cluster, ClusterShared};
pub use collective::{flat_ram_barrier, ram_barrier, tree_ram_barrier};
pub use kernel::{Access, FaultHandler, Kernel, KernelHook};
pub use paging::{PageFlags, PageTable, Pte};
pub use tlb::TlbSnapshot;

/// Virtual base address of the SVM (shared virtual memory) window.
pub const SVM_VA_BASE: u32 = 0x8000_0000;
/// Virtual base address of the identity-mapped MPB window.
pub const MPB_VA_BASE: u32 = 0xC000_0000;
