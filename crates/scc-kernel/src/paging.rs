//! Per-core two-level page tables.
//!
//! Each kernel instance owns private page tables (the paper: "the page
//! tables are located in the private memory and, consequently, each core
//! possesses its own version of the page tables"). A PTE carries the usual
//! x86 bits plus the SCC's `MPBT` memory-type bit; the combination of
//! `PWT`/`PCD`/`MPBT` maps onto a [`scc_hw::MemAttr`] for the memory engine.

use scc_hw::MemAttr;

/// Page size (4 KiB, as on the P54C).
pub const PAGE_SIZE: u32 = 4096;
const ENTRIES: usize = 1024;

/// PTE flag bits (a subset of x86 plus the SCC extension).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PageFlags(pub u32);

impl PageFlags {
    pub const PRESENT: u32 = 1 << 0;
    pub const RW: u32 = 1 << 1;
    /// Write-through (x86 `PWT`).
    pub const PWT: u32 = 1 << 2;
    /// Cache disable (x86 `PCD`).
    pub const PCD: u32 = 1 << 3;
    /// SCC extension: MPBT memory type (L2 bypass, `CL1INVMB` target,
    /// write-combine buffer).
    pub const MPBT: u32 = 1 << 4;

    /// Private memory: present, writable, write-back cached.
    pub fn private_rw() -> Self {
        PageFlags(Self::PRESENT | Self::RW)
    }

    /// SVM shared page with full access: write-through + MPBT (the
    /// configuration MetalSVM uses for shared pages, §3).
    pub fn shared_rw() -> Self {
        PageFlags(Self::PRESENT | Self::RW | Self::PWT | Self::MPBT)
    }

    /// SVM shared page, read-only (strong model: non-owner; or §6.4
    /// read-only regions after clearing MPBT).
    pub fn shared_ro_mpbt() -> Self {
        PageFlags(Self::PRESENT | Self::PWT | Self::MPBT)
    }

    /// Read-only region with the L2 enabled (§6.4: MPBT cleared).
    pub fn readonly_l2() -> Self {
        PageFlags(Self::PRESENT | Self::PWT)
    }

    /// Uncacheable mapping.
    pub fn uncached_rw() -> Self {
        PageFlags(Self::PRESENT | Self::RW | Self::PCD)
    }

    #[inline]
    pub fn present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }

    #[inline]
    pub fn writable(self) -> bool {
        self.0 & Self::RW != 0
    }

    #[inline]
    pub fn mpbt(self) -> bool {
        self.0 & Self::MPBT != 0
    }

    /// Derive the memory-engine attributes for an access through this PTE.
    pub fn attr(self) -> MemAttr {
        if self.0 & Self::PCD != 0 {
            return MemAttr::UNCACHED;
        }
        let mpbt = self.mpbt();
        MemAttr {
            l1: true,
            // The SCC bypasses the L2 for MPBT-typed accesses.
            l2: !mpbt,
            write_back: self.0 & Self::PWT == 0,
            mpbt,
        }
    }
}

/// One page-table entry: flags in the low bits, page-frame number above.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Pte(pub u32);

impl Pte {
    pub const EMPTY: Pte = Pte(0);

    pub fn new(pfn: u32, flags: PageFlags) -> Self {
        debug_assert!(flags.0 < PAGE_SIZE);
        Pte((pfn << 12) | flags.0)
    }

    #[inline]
    pub fn flags(self) -> PageFlags {
        PageFlags(self.0 & 0xfff)
    }

    #[inline]
    pub fn pfn(self) -> u32 {
        self.0 >> 12
    }

    /// Physical address for a virtual address mapped by this entry.
    #[inline]
    pub fn pa(self, va: u32) -> u32 {
        (self.pfn() << 12) | (va & (PAGE_SIZE - 1))
    }
}

/// A two-level page table: 1024 directory slots, each lazily holding a
/// 1024-entry leaf table (so an unused 4 MiB region costs nothing).
pub struct PageTable {
    dir: Vec<Option<Box<[Pte; ENTRIES]>>>,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    pub fn new() -> Self {
        let mut dir = Vec::with_capacity(ENTRIES);
        dir.resize_with(ENTRIES, || None);
        PageTable { dir }
    }

    #[inline]
    fn split(va: u32) -> (usize, usize) {
        ((va >> 22) as usize, ((va >> 12) & 0x3ff) as usize)
    }

    /// Look up the PTE covering `va`.
    #[inline]
    pub fn lookup(&self, va: u32) -> Pte {
        let (d, t) = Self::split(va);
        match &self.dir[d] {
            Some(leaf) => leaf[t],
            None => Pte::EMPTY,
        }
    }

    /// Install a mapping for the page containing `va`.
    pub fn map(&mut self, va: u32, pfn: u32, flags: PageFlags) {
        let (d, t) = Self::split(va);
        let leaf = self.dir[d].get_or_insert_with(|| Box::new([Pte::EMPTY; ENTRIES]));
        leaf[t] = Pte::new(pfn, flags);
    }

    /// Remove the mapping for the page containing `va`; returns the old PTE.
    pub fn unmap(&mut self, va: u32) -> Pte {
        let (d, t) = Self::split(va);
        match &mut self.dir[d] {
            Some(leaf) => std::mem::replace(&mut leaf[t], Pte::EMPTY),
            None => Pte::EMPTY,
        }
    }

    /// Change only the flags of an existing mapping; returns false if the
    /// page was not mapped.
    pub fn protect(&mut self, va: u32, flags: PageFlags) -> bool {
        let (d, t) = Self::split(va);
        if let Some(leaf) = &mut self.dir[d] {
            if leaf[t] != Pte::EMPTY {
                leaf[t] = Pte::new(leaf[t].pfn(), flags);
                return true;
            }
        }
        false
    }

    /// Number of present mappings (diagnostic).
    pub fn mapped_pages(&self) -> usize {
        self.dir
            .iter()
            .flatten()
            .map(|leaf| leaf.iter().filter(|p| p.flags().present()).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lookup() {
        let pt = PageTable::new();
        assert_eq!(pt.lookup(0x8000_0000), Pte::EMPTY);
        assert!(!pt.lookup(0).flags().present());
    }

    #[test]
    fn map_lookup_roundtrip() {
        let mut pt = PageTable::new();
        pt.map(0x8000_1000, 0x42, PageFlags::shared_rw());
        let pte = pt.lookup(0x8000_1234);
        assert!(pte.flags().present());
        assert!(pte.flags().writable());
        assert_eq!(pte.pfn(), 0x42);
        assert_eq!(pte.pa(0x8000_1234), 0x42234);
        // Neighbouring page untouched.
        assert_eq!(pt.lookup(0x8000_2000), Pte::EMPTY);
    }

    #[test]
    fn unmap_clears() {
        let mut pt = PageTable::new();
        pt.map(0x1000, 7, PageFlags::private_rw());
        assert_eq!(pt.mapped_pages(), 1);
        let old = pt.unmap(0x1000);
        assert_eq!(old.pfn(), 7);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn protect_changes_flags_only() {
        let mut pt = PageTable::new();
        pt.map(0x3000, 9, PageFlags::shared_rw());
        assert!(pt.protect(0x3000, PageFlags::shared_ro_mpbt()));
        let pte = pt.lookup(0x3000);
        assert!(!pte.flags().writable());
        assert_eq!(pte.pfn(), 9);
        assert!(!pt.protect(0x9999_9000, PageFlags::shared_rw()));
    }

    #[test]
    fn attr_derivation() {
        assert_eq!(PageFlags::private_rw().attr(), MemAttr::PRIVATE_WB);
        assert_eq!(PageFlags::shared_rw().attr(), MemAttr::SHARED_MPBT_WT);
        assert_eq!(PageFlags::readonly_l2().attr(), MemAttr::SHARED_RO_L2);
        assert_eq!(PageFlags::uncached_rw().attr(), MemAttr::UNCACHED);
    }

    #[test]
    fn pte_split_boundaries() {
        let mut pt = PageTable::new();
        pt.map(0xFFFF_F000, 1, PageFlags::private_rw());
        pt.map(0x0000_0000, 2, PageFlags::private_rw());
        assert_eq!(pt.lookup(0xFFFF_FFFF).pfn(), 1);
        assert_eq!(pt.lookup(0x0000_0FFF).pfn(), 2);
    }
}
