//! Per-core software TLB — a host-performance fast path.
//!
//! The real P54C of course has a hardware TLB; the simulator historically
//! walked the two-level page table on every virtual access because the walk
//! is free in *simulated* time (only faults and PTE updates are charged).
//! On the host, though, that walk plus the fault-handler range scan is the
//! hottest code in the whole stack. This direct-mapped TLB memoizes
//! translations so the `vread`/`vwrite` hit path touches one array slot.
//!
//! Correctness contract: the kernel invalidates the affected entry on
//! **every** PTE mutation (`Kernel::{map_page, protect_page, unmap_page}`
//! are the single funnel all subsystems use — SVM ownership migration,
//! lazy-release invalidation, write-invalidate copyset drops, read-only
//! sealing). An entry therefore always mirrors the live page table, and the
//! fast path is invisible to simulated time: hits skip work that was never
//! charged a cycle.

use crate::paging::Pte;
use scc_hw::metrics::{MetricsSnapshot, MetricsSource};

/// Number of direct-mapped entries. 64 covers the working set of a page or
/// two per array in the paper's kernels while keeping the table in one or
/// two host cache lines.
pub const TLB_ENTRIES: usize = 64;

/// Tag value marking an empty slot; virtual page numbers are at most 20
/// bits, so this can never collide with a real VPN.
const EMPTY_TAG: u32 = u32::MAX;

/// A direct-mapped translation cache keyed by virtual page number.
pub struct Tlb {
    tags: [u32; TLB_ENTRIES],
    ptes: [Pte; TLB_ENTRIES],
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new()
    }
}

impl Tlb {
    pub fn new() -> Self {
        Tlb {
            tags: [EMPTY_TAG; TLB_ENTRIES],
            ptes: [Pte::EMPTY; TLB_ENTRIES],
        }
    }

    #[inline]
    fn slot(vpn: u32) -> usize {
        vpn as usize % TLB_ENTRIES
    }

    /// Cached translation for `vpn`, if any. Permission checking is the
    /// caller's job (the kernel treats a cached non-writable entry as a
    /// miss for write accesses).
    #[inline]
    pub fn lookup(&self, vpn: u32) -> Option<Pte> {
        let s = Self::slot(vpn);
        (self.tags[s] == vpn).then(|| self.ptes[s])
    }

    /// Cache a translation (evicts whatever shared the slot).
    #[inline]
    pub fn insert(&mut self, vpn: u32, pte: Pte) {
        let s = Self::slot(vpn);
        self.tags[s] = vpn;
        self.ptes[s] = pte;
    }

    /// Shootdown: drop the entry for `vpn` if present. Returns whether an
    /// entry was actually dropped (feeds the `tlb_shootdowns` counter).
    #[inline]
    pub fn invalidate_page(&mut self, vpn: u32) -> bool {
        let s = Self::slot(vpn);
        if self.tags[s] == vpn {
            self.tags[s] = EMPTY_TAG;
            true
        } else {
            false
        }
    }

    /// Drop every entry; returns how many were live.
    pub fn flush(&mut self) -> usize {
        let live = self.tags.iter().filter(|&&t| t != EMPTY_TAG).count();
        self.tags = [EMPTY_TAG; TLB_ENTRIES];
        live
    }

    /// Number of currently live entries.
    pub fn live_count(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY_TAG).count()
    }
}

/// One coherent snapshot of a core's software-TLB state: the activity
/// counters (which accumulate in the hardware perf block) together with
/// the current occupancy. Obtained via `Kernel::tlb_snapshot`; replaces
/// picking loose counters out of `PerfCounters` by hand.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TlbSnapshot {
    /// Translations served from the TLB.
    pub hits: u64,
    /// Page-table walks taken.
    pub misses: u64,
    /// Entries dropped by PTE-mutation shootdowns.
    pub shootdowns: u64,
    /// Entries currently live.
    pub live_entries: usize,
    /// Total slots ([`TLB_ENTRIES`]).
    pub capacity: usize,
}

impl TlbSnapshot {
    /// Hit rate in [0, 1]; `None` when no translations were recorded.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

impl MetricsSource for TlbSnapshot {
    fn metrics_into(&self, m: &mut MetricsSnapshot) {
        m.add("kernel.tlb_hits", self.hits);
        m.add("kernel.tlb_misses", self.misses);
        m.add("kernel.tlb_shootdowns", self.shootdowns);
        m.add("kernel.tlb_live_entries", self.live_entries as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::PageFlags;

    #[test]
    fn insert_lookup_invalidate() {
        let mut t = Tlb::new();
        assert_eq!(t.lookup(5), None);
        let pte = Pte::new(0x123, PageFlags::shared_rw());
        t.insert(5, pte);
        assert_eq!(t.lookup(5).map(|p| p.0), Some(pte.0));
        assert!(t.invalidate_page(5));
        assert!(!t.invalidate_page(5), "second shootdown finds nothing");
        assert_eq!(t.lookup(5), None);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut t = Tlb::new();
        let a = Pte::new(1, PageFlags::shared_rw());
        let b = Pte::new(2, PageFlags::shared_rw());
        t.insert(3, a);
        t.insert(3 + TLB_ENTRIES as u32, b); // same slot
        assert_eq!(t.lookup(3), None, "evicted by the conflicting insert");
        assert_eq!(t.lookup(3 + TLB_ENTRIES as u32).map(|p| p.0), Some(b.0));
    }

    #[test]
    fn flush_counts_live_entries() {
        let mut t = Tlb::new();
        t.insert(1, Pte::new(1, PageFlags::shared_rw()));
        t.insert(2, Pte::new(2, PageFlags::shared_rw()));
        assert_eq!(t.live_count(), 2);
        assert_eq!(t.flush(), 2);
        assert_eq!(t.live_count(), 0);
        assert_eq!(t.lookup(1), None);
    }

    #[test]
    fn snapshot_metrics_and_hit_rate() {
        let s = TlbSnapshot {
            hits: 9,
            misses: 1,
            shootdowns: 2,
            live_entries: 5,
            capacity: TLB_ENTRIES,
        };
        assert_eq!(s.hit_rate(), Some(0.9));
        assert_eq!(TlbSnapshot::default().hit_rate(), None);
        let m = s.metrics();
        assert_eq!(m.get("kernel.tlb_hits"), 9);
        assert_eq!(m.get("kernel.tlb_live_entries"), 5);
    }
}
