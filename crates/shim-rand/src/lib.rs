//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so the handful of `rand`
//! APIs actually used (seeded `StdRng` + `Rng::gen`) are reimplemented here
//! on top of SplitMix64. The streams are deterministic and stable across
//! platforms, which is all the simulator's workloads need — they use the
//! RNG as a reproducible input generator, not for statistical quality.

/// Types that `Rng::gen` can produce.
pub trait Standard {
    fn from_u64(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}
impl Standard for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the same construction
    /// real `rand` uses).
    fn from_u64(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits >> 63 != 0
    }
}

/// Minimal `Rng` facade.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    /// Uniform in `[0, bound)` (used by tests for index generation).
    fn gen_range_u64(&mut self, bound: u64) -> u64
    where
        Self: Sized,
    {
        self.next_u64() % bound
    }
}

/// Minimal `SeedableRng` facade.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    /// SplitMix64: tiny, full-period, and excellent for seeding-style use.
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
