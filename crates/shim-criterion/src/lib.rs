//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the bench-authoring API this workspace uses
//! (`Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros and
//! `black_box`). Instead of criterion's statistical machinery it times a
//! short warmup plus `sample_size` measured iterations and prints
//! min/mean/max per iteration — enough to track the perf trajectory
//! without a registry dependency.

use std::time::Instant;

pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup { sample_size: 10 }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, 10, f);
        self
    }

    /// Accepted for API compatibility; configuration comes from the
    /// `--bench` harness in real criterion and is ignored here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<f64>,
    rounds: usize,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // One unmeasured warmup iteration, then the measured rounds.
        black_box(f());
        for _ in 0..self.rounds {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed().as_secs_f64());
        }
    }
}

fn run_bench(name: &str, rounds: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        rounds,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "  {name}: mean {:.3} ms  min {:.3} ms  max {:.3} ms  ({} samples)",
        mean * 1e3,
        min * 1e3,
        max * 1e3,
        b.samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("counting", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 4, "1 warmup + 3 samples");
    }
}
