//! Shared helpers for the cross-crate integration test suite.

use metalsvm::{install as svm_install, SvmConfig, SvmCtx};
use scc_hw::SccConfig;
use scc_kernel::{Cluster, Kernel};
use scc_mailbox::{install as mbx_install, Mailbox, Notify};

/// Boot the full MetalSVM stack (mailbox + SVM) on `n` cores and run
/// `body`; returns the per-core results.
pub fn with_stack<R, F>(n: usize, notify: Notify, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Kernel<'_>, &Mailbox, &mut SvmCtx) -> R + Send + Sync,
{
    let cl = Cluster::new(SccConfig::small()).expect("machine");
    cl.run(n, |k| {
        let mbx = mbx_install(k, notify);
        let mut svm = svm_install(k, &mbx, SvmConfig::default());
        body(k, &mbx, &mut svm)
    })
    .expect("no deadlock")
    .into_iter()
    .map(|r| r.result)
    .collect()
}
