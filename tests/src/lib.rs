//! Shared helpers for the cross-crate integration test suite.

use metalsvm::{install as svm_install, SvmConfig, SvmCtx};
use scc_hw::{SccConfig, Topology};
use scc_kernel::{Cluster, Kernel};
use scc_mailbox::{install as mbx_install, Mailbox, Notify};

/// Boot the full MetalSVM stack (mailbox + SVM) on `n` cores and run
/// `body`; returns the per-core results.
pub fn with_stack<R, F>(n: usize, notify: Notify, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Kernel<'_>, &Mailbox, &mut SvmCtx) -> R + Send + Sync,
{
    with_stack_cfg(SccConfig::small(), n, notify, body)
}

/// [`with_stack`] on an explicit mesh shape instead of the default (or
/// `SCC_TOPOLOGY`-selected) one.
pub fn with_stack_on<R, F>(topo: Topology, n: usize, notify: Notify, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Kernel<'_>, &Mailbox, &mut SvmCtx) -> R + Send + Sync,
{
    with_stack_cfg(SccConfig::small_with(topo), n, notify, body)
}

fn with_stack_cfg<R, F>(cfg: SccConfig, n: usize, notify: Notify, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Kernel<'_>, &Mailbox, &mut SvmCtx) -> R + Send + Sync,
{
    let cl = Cluster::new(cfg).expect("machine");
    cl.run(n, |k| {
        let mbx = mbx_install(k, notify);
        let mut svm = svm_install(k, &mbx, SvmConfig::default());
        body(k, &mbx, &mut svm)
    })
    .expect("no deadlock")
    .into_iter()
    .map(|r| r.result)
    .collect()
}
