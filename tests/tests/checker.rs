//! Integration tests for the `svm-check` consistency-checker subsystem.
//!
//! Three contracts, matching the checker's spec:
//!
//! 1. **Clean apps are finding-free** — every application workload, run
//!    under both the strong and the lazy release model (forced via
//!    `SvmConfig::model_override`), produces zero findings.
//! 2. **Planted bugs are found exactly** — each fixture kernel yields
//!    exactly one finding, from the right detector, with the right slug,
//!    page and cores.
//! 3. **Online == offline** — feeding the rings to the checker as an
//!    `EventSink` and re-parsing the exported protocol log / Chrome trace
//!    produce identical findings.
//!
//! Without the `trace` feature the whole subsystem must be a no-op.

#[cfg(feature = "trace")]
mod traced {
    use metalsvm::{install as svm_install, Consistency, SvmConfig, SvmCtx};
    use scc_apps::fixtures::{fixture, run_fixture_traced, FIXTURES};
    use scc_apps::histogram::HistParams;
    use scc_apps::laplace::LaplaceParams;
    use scc_checker::{check_rings, parse, Checker};
    use scc_hw::instr::{chrome_trace_json, protocol_log, EventKind, TraceConfig};
    use scc_hw::{CoreId, SccConfig, TraceRing};
    use scc_kernel::{Cluster, Kernel};
    use scc_mailbox::{install as mbx_install, Mailbox, Notify};

    fn trace_cfg() -> TraceConfig {
        TraceConfig {
            per_core_capacity: 1 << 16,
            mask: EventKind::default_mask(),
        }
    }

    /// Run an SPMD closure on `n` cores of a small machine with tracing
    /// on, returning the per-core rings.
    fn run_traced(
        n: usize,
        svm_cfg: SvmConfig,
        f: impl Fn(&mut Kernel<'_>, &Mailbox, &mut SvmCtx) + Send + Sync + 'static,
    ) -> Vec<(CoreId, TraceRing)> {
        let cfg = SccConfig {
            trace: trace_cfg(),
            ..SccConfig::small()
        };
        let cl = Cluster::new(cfg).unwrap();
        let res = cl
            .run(n, move |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, svm_cfg);
                f(k, &mbx, &mut svm);
            })
            .unwrap();
        let rings: Vec<(CoreId, TraceRing)> =
            res.into_iter().map(|r| (r.core, r.trace)).collect();
        assert!(
            rings.iter().all(|(_, r)| r.overwritten() == 0),
            "ring wrapped — grow per_core_capacity so absence checks stay sound"
        );
        rings
    }

    #[test]
    fn clean_apps_are_finding_free_under_both_models() {
        for model in [Consistency::Strong, Consistency::LazyRelease] {
            let cfg = SvmConfig::builder()
                .model_override(model)
                .build()
                .expect("valid config");
            let apps: Vec<(&str, Vec<(CoreId, TraceRing)>)> = vec![
                (
                    "dotprod",
                    run_traced(4, cfg, |k, _m, svm| {
                        scc_apps::dotprod::dotprod(k, svm, 512, 2);
                    }),
                ),
                (
                    "histogram",
                    run_traced(4, cfg, |k, _m, svm| {
                        scc_apps::histogram::histogram(k, svm, HistParams::tiny());
                    }),
                ),
                (
                    "laplace",
                    run_traced(4, cfg, move |k, _m, svm| {
                        scc_apps::laplace::laplace_svm(k, svm, model, LaplaceParams::tiny());
                    }),
                ),
                (
                    "matmul",
                    run_traced(4, cfg, |k, _m, svm| {
                        scc_apps::matmul::matmul(k, svm, 12);
                    }),
                ),
                (
                    "pipeline",
                    run_traced(3, cfg, |k, mbx, _svm| {
                        scc_apps::pipeline::pipeline(k, mbx, 16);
                    }),
                ),
            ];
            for (name, rings) in apps {
                let rep = check_rings(rings.iter().map(|(c, r)| (*c, r)));
                assert!(rep.events > 0, "{name}: trace must not be empty");
                assert!(!rep.truncated, "{name}: stream must be complete");
                assert!(
                    rep.findings.is_empty(),
                    "{name} under {model:?} must be clean:\n{}",
                    rep.render_text()
                );
            }
        }
    }

    #[test]
    fn each_fixture_yields_exactly_its_planted_finding() {
        for f in FIXTURES {
            let rings = run_fixture_traced(f, trace_cfg());
            let rep = check_rings(rings.iter().map(|(c, r)| (*c, r)));
            assert_eq!(
                rep.findings.len(),
                1,
                "{} must yield exactly one finding:\n{}",
                f.name,
                rep.render_text()
            );
            let found = &rep.findings[0];
            assert_eq!(found.slug, f.expect, "{}: wrong finding kind", f.name);
            assert_eq!(
                found.detector.name(),
                f.detector,
                "{}: wrong detector",
                f.name
            );
            // The rings come back in rank order; fixture docs fix the core
            // roles (rank 0 writer/owner, rank 1 reader/forger).
            let ids: Vec<usize> = rings.iter().map(|(c, _)| c.idx()).collect();
            assert_eq!(
                &found.cores[..],
                &ids[..f.cores],
                "{}: wrong cores",
                f.name
            );
            // Page-scoped findings must name the page the fixture allocated.
            if f.cores == 2 {
                let log = protocol_log(rings.iter().map(|(c, r)| (*c, r)));
                let page: u32 = log
                    .lines()
                    .find(|l| l.contains("svm.region_alloc"))
                    .and_then(|l| l.split("page=").nth(1))
                    .and_then(|s| s.split_whitespace().next())
                    .expect("fixture must allocate a region")
                    .parse()
                    .unwrap();
                assert_eq!(found.page, Some(page), "{}: wrong page", f.name);
            } else {
                assert_eq!(found.page, None, "{}: lint findings are page-free", f.name);
            }
        }
    }

    #[test]
    fn online_sink_and_offline_replay_agree() {
        let mhz = SccConfig::small().timing.core_mhz;
        let stale = run_fixture_traced(fixture("stale_read").unwrap(), trace_cfg());
        let clean = run_traced(4, SvmConfig::default(), |k, _m, svm| {
            scc_apps::laplace::laplace_svm(k, svm, Consistency::Strong, LaplaceParams::tiny());
        });
        for (name, rings) in [("stale_read", stale), ("laplace_strong", clean)] {
            let online = check_rings(rings.iter().map(|(c, r)| (*c, r)));

            let log = protocol_log(rings.iter().map(|(c, r)| (*c, r)));
            let mut from_log = Checker::new();
            for r in parse::parse_protocol_log(&log).unwrap() {
                from_log.push(r.core, r.e);
            }
            let from_log = from_log.finish();

            let json = chrome_trace_json(rings.iter().map(|(c, r)| (*c, r)), mhz);
            let mut from_chrome = Checker::new();
            for r in parse::parse_chrome_trace(&json, mhz).unwrap() {
                from_chrome.push(r.core, r.e);
            }
            let from_chrome = from_chrome.finish();

            // The protocol log carries every event; the Chrome trace folds
            // scheduler block pairs into slices — but findings must be
            // identical on all three paths.
            assert_eq!(online.events, from_log.events, "{name}: log must be lossless");
            assert_eq!(
                online.findings, from_log.findings,
                "{name}: protocol-log replay diverged"
            );
            assert_eq!(
                online.findings, from_chrome.findings,
                "{name}: chrome-trace replay diverged"
            );
        }
    }
}

#[cfg(not(feature = "trace"))]
mod untraced {
    use scc_apps::fixtures::{fixture, run_fixture_traced};
    use scc_checker::check_rings;
    use scc_hw::instr::{EventKind, TraceConfig};
    use scc_hw::TraceRing;

    #[test]
    fn without_the_trace_feature_the_checker_is_a_no_op() {
        assert!(
            !TraceRing::compiled_in(),
            "this test only runs without the trace feature"
        );
        let f = fixture("stale_read").unwrap();
        let rings = run_fixture_traced(
            f,
            TraceConfig {
                per_core_capacity: 1 << 16,
                mask: EventKind::default_mask(),
            },
        );
        let rep = check_rings(rings.iter().map(|(c, r)| (*c, r)));
        assert_eq!(rep.events, 0, "no events may be recorded");
        assert!(rep.findings.is_empty(), "no events, no findings");
        assert!(!rep.truncated);
    }
}
