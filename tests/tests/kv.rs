//! Cross-crate kv suite: latency-histogram properties against a naive
//! sorted-vector model, and bit-identical service determinism across the
//! serial baton executor and the parallel conservative executor.

use metalsvm::{install as svm_install, SvmConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scc_hw::{HostFastPaths, SccConfig};
use scc_kernel::Cluster;
use scc_kv::{run_kv, KvConfig, KvOutcome, LatencyHistogram, Strategy, SUB_BUCKETS};
use scc_mailbox::{install as mbx_install, Notify};

/// Naive model: exact quantile of a sorted sample vector, same definition
/// as the histogram's ("smallest value with at least ceil(q*n) at or
/// below it").
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted[idx]
}

/// Property: for arbitrary samples and quantiles, the histogram answer is
/// within one sub-bucket (1/16 relative) of the sorted-vector model.
#[test]
fn histogram_quantiles_match_naive_model_within_bound() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..40 {
        let n = 1 + rng.gen_range_u64(3999);
        // Mix distribution shapes: small values, wide uniform, log-uniform.
        let mut vals: Vec<u64> = (0..n)
            .map(|_| match case % 3 {
                0 => rng.gen_range_u64(100),
                1 => rng.gen_range_u64(10_000_000),
                _ => {
                    let e = rng.gen_range_u64(40) as u32;
                    rng.gen_range_u64(2u64.pow(e) + 1)
                }
            })
            .collect();
        let mut h = LatencyHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for _ in 0..16 {
            let q = 0.001 + rng.gen::<f64>() * 0.998;
            let exact = exact_quantile(&vals, q);
            let approx = h.quantile(q);
            let bound = exact as f64 / SUB_BUCKETS as f64 + 1.0;
            assert!(
                (approx as f64 - exact as f64).abs() <= bound,
                "case {case}, n {n}, q {q}: histogram {approx} vs model {exact} \
                 (bound {bound})"
            );
        }
        assert_eq!(h.count(), vals.len() as u64);
        assert_eq!(h.max(), *vals.last().unwrap());
    }
}

/// Property: merge is associative and commutative, and merging shards
/// equals recording everything into one histogram.
#[test]
fn histogram_merge_is_associative_and_lossless() {
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..20 {
        let shards: Vec<Vec<u64>> = (0..3)
            .map(|_| {
                (0..rng.gen_range_u64(500))
                    .map(|_| rng.gen_range_u64(1_000_000))
                    .collect()
            })
            .collect();
        let hs: Vec<LatencyHistogram> = shards
            .iter()
            .map(|vs| {
                let mut h = LatencyHistogram::new();
                for &v in vs {
                    h.record(v);
                }
                h
            })
            .collect();

        // ((a + b) + c)
        let mut left = hs[0].clone();
        left.merge(&hs[1]);
        left.merge(&hs[2]);
        // (a + (b + c))
        let mut bc = hs[1].clone();
        bc.merge(&hs[2]);
        let mut right = hs[0].clone();
        right.merge(&bc);
        // (c + b + a) — commutativity
        let mut rev = hs[2].clone();
        rev.merge(&hs[1]);
        rev.merge(&hs[0]);
        // Everything recorded into one histogram directly.
        let mut all = LatencyHistogram::new();
        for vs in &shards {
            for &v in vs {
                all.record(v);
            }
        }
        assert_eq!(left, right, "merge must be associative");
        assert_eq!(left, rev, "merge must be commutative");
        assert_eq!(left, all, "merging shards must equal direct recording");
    }
}

/// One kv service run under the given executor mode; full per-request
/// records on so the comparison is bit-for-bit.
fn kv_run(host_fast: HostFastPaths, seed: u64) -> Vec<KvOutcome> {
    let cfg = SccConfig {
        host_fast,
        ..SccConfig::small()
    };
    let kv = KvConfig {
        servers: 2,
        partitions: vec![Strategy::Strong, Strategy::Lrc, Strategy::Sealed],
        keyspace_log2: 10,
        requests_per_client: 200,
        mean_interarrival: 25_000,
        zipf_theta: 0.9,
        get_pct: 60,
        scan_pct: 15,
        scan_len: 12,
        seed,
        record_requests: true,
    };
    let cl = Cluster::new(cfg).expect("machine");
    cl.run(8, |k| {
        // The parallel executor does not support IPIs; both sides poll so
        // the comparison is apples to apples.
        let mbx = mbx_install(k, Notify::Poll);
        let mut svm = svm_install(k, &mbx, SvmConfig::default());
        run_kv(k, &mbx, &mut svm, &kv)
    })
    .expect("kv service must not deadlock")
    .into_iter()
    .map(|r| r.result)
    .collect()
}

/// The determinism contract: the same seed must produce bit-identical
/// request traces (every corr/op/key/sched/done stamp), reply values and
/// latency histograms under the serial baton executor and the parallel
/// conservative executor.
#[test]
fn kv_service_bit_identical_parallel_vs_serial() {
    let serial = kv_run(HostFastPaths::default(), 0xD00D);
    let parallel = kv_run(HostFastPaths::parallel(), 0xD00D);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(s, p, "core {i} diverged between executors");
    }
    // And a different seed must actually change the trace (the comparison
    // above is not vacuous).
    let other = kv_run(HostFastPaths::default(), 0xD00E);
    assert_ne!(serial, other);
}
