//! Shadow-mode determinism for the host fast paths.
//!
//! The simulated TLB, the bulk accessors and the executor's fast yield are
//! host-performance optimisations only: simulated time must stay
//! bit-identical with every combination of them enabled or disabled. These
//! tests run the same workloads once per configuration and compare the
//! final per-core virtual clocks (and results) exactly.

use metalsvm::{install as svm_install, Consistency, ScratchLocation, SvmConfig};
use rcce::RcceComm;
use scc_apps::laplace::{laplace_ircce, laplace_svm, LaplaceParams};
use scc_bench::{laplace_config, svm_overhead_host, LaplaceVariant};
use scc_hw::{HostFastPaths, SccConfig};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

/// One Laplace run; returns (checksum, final per-core clocks, merged perf).
fn laplace_shadow(
    variant: LaplaceVariant,
    n: usize,
    p: LaplaceParams,
    host_fast: HostFastPaths,
) -> (f64, Vec<u64>, scc_hw::PerfCounters) {
    let cfg = SccConfig {
        host_fast,
        ..laplace_config(n, p)
    };
    let cl = Cluster::new(cfg).expect("machine");
    let res = cl
        .run(n, move |k| match variant {
            LaplaceVariant::Ircce => {
                let mut comm = RcceComm::init(k);
                laplace_ircce(k, &mut comm, p)
            }
            LaplaceVariant::SvmStrong | LaplaceVariant::SvmLazy => {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, SvmConfig::default());
                let model = if variant == LaplaceVariant::SvmStrong {
                    Consistency::Strong
                } else {
                    Consistency::LazyRelease
                };
                laplace_svm(k, &mut svm, model, p)
            }
        })
        .expect("no deadlock");
    let mut perf = scc_hw::PerfCounters::default();
    for r in &res {
        perf.merge(&r.perf);
    }
    (
        res[0].result.checksum,
        res.iter().map(|r| r.clock.as_u64()).collect(),
        perf,
    )
}

/// The interesting points of the fast-path configuration space: each layer
/// alone (for bisection) and all of them together.
fn fast_configs() -> [(&'static str, HostFastPaths); 4] {
    let walk = HostFastPaths::walk_path();
    [
        ("tlb", HostFastPaths { tlb: true, ..walk }),
        ("bulk", HostFastPaths { bulk: true, ..walk }),
        ("fast_yield", HostFastPaths { fast_yield: true, ..walk }),
        ("all", HostFastPaths::default()),
    ]
}

#[test]
fn laplace_clocks_identical_walk_vs_fast_all_variants() {
    let p = LaplaceParams::tiny();
    let n = 4;
    for variant in [
        LaplaceVariant::Ircce,
        LaplaceVariant::SvmStrong,
        LaplaceVariant::SvmLazy,
    ] {
        let (ref_sum, ref_clocks, ref_perf) =
            laplace_shadow(variant, n, p, HostFastPaths::walk_path());
        assert_eq!(
            ref_perf.tlb_hits, 0,
            "walk path must not consult the TLB ({})",
            variant.label()
        );
        for (name, host) in fast_configs() {
            let (sum, clocks, _) = laplace_shadow(variant, n, p, host);
            assert_eq!(
                sum,
                ref_sum,
                "checksum diverged ({}, {name})",
                variant.label()
            );
            assert_eq!(
                clocks,
                ref_clocks,
                "per-core clocks diverged ({}, {name})",
                variant.label()
            );
        }
    }
}

#[test]
fn laplace_fast_run_actually_exercises_the_tlb() {
    let p = LaplaceParams::tiny();
    let (_, _, perf) = laplace_shadow(
        LaplaceVariant::SvmLazy,
        4,
        p,
        HostFastPaths::default(),
    );
    assert!(perf.tlb_hits > 0, "TLB must serve translations: {perf:?}");
    assert!(
        perf.tlb_hits > 100 * perf.tlb_misses,
        "the streaming stencil must hit overwhelmingly: {perf:?}"
    );
}

#[test]
fn uncontended_yields_take_the_executor_fast_path() {
    // Pure compute loops never block, so with the fast path enabled every
    // baton handoff skips the decision round — and simulated clocks still
    // match the walk path exactly.
    let run = |host_fast: HostFastPaths| {
        let cfg = SccConfig {
            host_fast,
            ..SccConfig::small()
        };
        let cl = Cluster::new(cfg).expect("machine");
        let res = cl
            .run(4, |k| {
                for i in 0..200u64 {
                    k.hw.advance(10 + (i % 7));
                    k.hw.yield_now();
                }
            })
            .expect("no deadlock");
        let clocks: Vec<u64> = res.iter().map(|r| r.clock.as_u64()).collect();
        let mut perf = scc_hw::PerfCounters::default();
        for r in &res {
            perf.merge(&r.perf);
        }
        (clocks, perf)
    };
    let (walk_clocks, walk_perf) = run(HostFastPaths::walk_path());
    let (fast_clocks, fast_perf) = run(HostFastPaths::default());
    assert_eq!(walk_clocks, fast_clocks, "fast yield changed simulated time");
    assert_eq!(walk_perf.fast_yields, 0);
    assert!(
        fast_perf.fast_yields > 500,
        "4 cores x 200 uncontended yields must mostly take the fast path: \
         {fast_perf:?}"
    );
}

#[test]
fn table1_overheads_identical_walk_vs_fast() {
    // The §7.2.1 microbenchmark measures simulated time directly; every
    // reported overhead must be bit-identical between the walk path and
    // the full fast path, for both consistency models.
    for model in [Consistency::Strong, Consistency::LazyRelease] {
        let walk = svm_overhead_host(model, ScratchLocation::Mpb, HostFastPaths::walk_path());
        let fast = svm_overhead_host(model, ScratchLocation::Mpb, HostFastPaths::default());
        assert_eq!(walk.alloc_4mib_us, fast.alloc_4mib_us, "{model:?} alloc");
        assert_eq!(
            walk.physical_alloc_us, fast.physical_alloc_us,
            "{model:?} physical alloc"
        );
        assert_eq!(walk.map_us, fast.map_us, "{model:?} map");
        assert_eq!(walk.retrieve_us, fast.retrieve_us, "{model:?} retrieve");
    }
}
