//! End-to-end tests across all crates: mailbox + RCCE + SVM coexisting on
//! the same machine, the way MetalSVM composes its subsystems.

use integration_tests::with_stack;
use metalsvm::{Consistency, SvmArray};
use rcce::{allreduce_f64, RcceComm, ReduceOp};
use scc_apps::laplace::{laplace_reference, LaplaceParams};
use scc_bench::{laplace_run, LaplaceVariant};
use scc_hw::{CoreId, SccConfig};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, MailKind, Notify};

#[test]
fn svm_and_rcce_share_the_mpb_peacefully() {
    // The mailbox claims the bottom of each MPB, RCCE the middle, the SVM
    // scratch pad the top kilobyte. All three must work simultaneously.
    let cl = Cluster::new(SccConfig::small()).unwrap();
    cl.run(4, |k| {
        let mbx = mbx_install(k, Notify::Ipi);
        let mut svm = metalsvm::install(k, &mbx, metalsvm::SvmConfig::default());
        let mut comm = RcceComm::init(k);

        // SVM traffic: shared array under the strong model.
        let r = svm.alloc(k, 8192, Consistency::Strong);
        let a = SvmArray::<f64>::new(r, 64);
        if k.rank() == 0 {
            for i in 0..64 {
                a.set(k, i, i as f64);
            }
        }
        svm.barrier(k);

        // RCCE traffic: an allreduce over the same cores.
        let va = k.kalloc_pages(1);
        k.vwrite_f64(va, (k.rank() + 1) as f64);
        allreduce_f64(k, &mut comm, va, 1, ReduceOp::Sum);
        assert_eq!(k.vread_f64(va), 10.0); // 1+2+3+4

        // Mailbox traffic: a direct user mail ring.
        let next = CoreId::new((k.rank() + 1) % 4);
        let prev = CoreId::new((k.rank() + 3) % 4);
        mbx.send(k, next, MailKind::USER, &[k.rank() as u8]);
        let m = mbx.recv_from(k, prev);
        assert_eq!(m.data(), &[prev.idx() as u8]);

        // And the SVM data is still intact.
        assert_eq!(a.get(k, 42), 42.0);
        svm.barrier(k);
    })
    .unwrap();
}

#[test]
fn laplace_all_variants_all_core_counts_agree() {
    let p = LaplaceParams {
        width: 64,
        height: 32,
        iters: 6,
    };
    let want = laplace_reference(p);
    for n in [1, 2, 3, 5, 8] {
        for v in [
            LaplaceVariant::Ircce,
            LaplaceVariant::SvmStrong,
            LaplaceVariant::SvmLazy,
        ] {
            let run = laplace_run(v, n, p);
            assert_eq!(
                run.checksum,
                want,
                "{} on {n} cores deviates from the reference",
                v.label()
            );
        }
    }
}

#[test]
fn strong_model_random_writers_converge() {
    // Pseudo-random single-writer schedule over multiple pages: the
    // ownership protocol must serialise correctly whatever the pattern.
    let n = 5;
    let pages = 4;
    let results = with_stack(n, Notify::Ipi, |k, _mbx, svm| {
        let r = svm.alloc(k, pages * 4096, Consistency::Strong);
        let a = SvmArray::<u64>::new(r, pages as usize * 512);
        svm.barrier(k);
        for round in 0..20u64 {
            // Writer of (round, page) = deterministic hash.
            for page in 0..pages as u64 {
                let writer = ((round * 7 + page * 13) % n as u64) as usize;
                if k.rank() == writer {
                    let idx = (page as usize) * 512;
                    let v = a.get(k, idx);
                    a.set(k, idx, v + round + page);
                }
            }
            svm.barrier(k);
        }
        (0..pages as usize).map(|p| a.get(k, p * 512)).collect::<Vec<u64>>()
    });
    let expect: Vec<u64> = (0..pages as u64)
        .map(|page| (0..20u64).map(|round| round + page).sum())
        .collect();
    for r in &results {
        assert_eq!(*r, expect);
    }
}

#[test]
fn per_core_hardware_counters_are_plausible() {
    let cl = Cluster::new(SccConfig::small()).unwrap();
    let res = cl
        .run(2, |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = metalsvm::install(k, &mbx, metalsvm::SvmConfig::default());
            let r = svm.alloc(k, 8192, Consistency::LazyRelease);
            let a = SvmArray::<u64>::new(r, 1024);
            if k.rank() == 0 {
                for i in 0..1024 {
                    a.set(k, i, 7);
                }
            }
            svm.barrier(k);
            let mut s = 0;
            for i in 0..1024 {
                s += a.get(k, i);
            }
            svm.barrier(k);
            s
        })
        .unwrap();
    for r in &res {
        assert_eq!(r.result, 7 * 1024);
        let p = &r.perf;
        assert!(p.l1_hits > 0, "sequential access must hit L1: {p:?}");
        assert!(p.wcb_flushes > 0 || r.core.idx() == 1);
        assert!(
            p.l1_hit_rate().unwrap() > 0.5,
            "32-byte lines hold 4 u64s: {p:?}"
        );
    }
}

#[test]
fn clocks_advance_monotonically_and_deterministically() {
    let run = || {
        with_stack(3, Notify::Poll, |k, _mbx, svm| {
            let r = svm.alloc(k, 4096, Consistency::LazyRelease);
            let a = SvmArray::<u64>::new(r, 8);
            a.set(k, k.rank(), k.rank() as u64);
            svm.barrier(k);
            let mut s = 0;
            for i in 0..3 {
                s += a.get(k, i);
            }
            svm.barrier(k);
            (s, k.hw.now())
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "virtual time must be deterministic");
    for (s, t) in &a {
        assert_eq!(*s, 3);
        assert!(*t > 0);
    }
}

#[test]
fn write_invalidate_laplace_matches_reference() {
    let p = LaplaceParams::tiny();
    let want = laplace_reference(p);
    let results = with_stack(3, Notify::Ipi, move |k, _mbx, svm| {
        scc_apps::laplace::laplace_svm(k, svm, Consistency::WriteInvalidate, p).checksum
    });
    assert_eq!(results[0], want, "WI-model Laplace must match the reference");
}
