//! Shape assertions for every table and figure of the paper, as small
//! fast versions of the `scc-bench` harnesses. These are the regression
//! tests that keep the reproduction honest: if a code change breaks a
//! *qualitative* claim of the paper, one of these fails.

use metalsvm::{Consistency, ScratchLocation};
use scc_bench::pingpong::{Background, PingPongSetup};
use scc_bench::{laplace_run, pingpong_latency_us, svm_overhead, LaplaceVariant};
use scc_hw::{CoreId, Topology};
use scc_mailbox::Notify;

/// Partner of core 0 at hop distance `h` on the paper's 48-core mesh.
fn core_at_distance(from: CoreId, h: u32) -> Option<CoreId> {
    Topology::scc48().core_at_distance(from, h)
}

// ---------------------------------------------------------------- Fig 6

#[test]
fn fig6_latency_increases_linearly_with_distance() {
    let lat: Vec<f64> = [0u32, 4, 8]
        .iter()
        .map(|&h| {
            let b = core_at_distance(CoreId::new(0), h).unwrap();
            pingpong_latency_us(&PingPongSetup::pair(CoreId::new(0), b, Notify::Ipi, 40))
        })
        .collect();
    assert!(lat[0] < lat[1] && lat[1] < lat[2], "monotonic: {lat:?}");
    // "Linear with a very low gradient": going 0 -> 8 hops must not even
    // double the latency.
    assert!(lat[2] < 2.0 * lat[0], "gradient too steep: {lat:?}");
    // And roughly linear: the midpoint lies near the average.
    let mid = (lat[0] + lat[2]) / 2.0;
    assert!((lat[1] - mid).abs() / mid < 0.25, "not linear: {lat:?}");
}

#[test]
fn fig6_ipi_above_no_ipi_with_two_cores() {
    let b = core_at_distance(CoreId::new(0), 5).unwrap();
    let poll = pingpong_latency_us(&PingPongSetup::pair(CoreId::new(0), b, Notify::Poll, 40));
    let ipi = pingpong_latency_us(&PingPongSetup::pair(CoreId::new(0), b, Notify::Ipi, 40));
    assert!(
        ipi > poll,
        "with 2 active cores the event-driven variant pays interrupt entry: \
         ipi {ipi:.3} vs poll {poll:.3}"
    );
    // "the gap is very low": within a handful of microseconds.
    assert!(ipi - poll < 5.0, "gap too large: {:.3}", ipi - poll);
}

// ---------------------------------------------------------------- Fig 7

fn fig7_setup(n: usize, notify: Notify, background: Background) -> PingPongSetup {
    let mut active = vec![CoreId::new(0), CoreId::new(30)];
    let mut next = 1;
    while active.len() < n {
        if next != 30 {
            active.push(CoreId::new(next));
        }
        next += 1;
    }
    PingPongSetup {
        a: CoreId::new(0),
        b: CoreId::new(30),
        active,
        notify,
        background,
        rounds: 40,
    }
}

#[test]
fn fig7_no_ipi_latency_grows_with_active_cores() {
    let l2 = pingpong_latency_us(&fig7_setup(2, Notify::Poll, Background::Idle));
    let l16 = pingpong_latency_us(&fig7_setup(16, Notify::Poll, Background::Idle));
    let l48 = pingpong_latency_us(&fig7_setup(48, Notify::Poll, Background::Idle));
    assert!(
        l2 < l16 && l16 < l48,
        "polling latency must grow with activated cores: {l2:.2} {l16:.2} {l48:.2}"
    );
}

#[test]
fn fig7_ipi_latency_stays_flat() {
    let l2 = pingpong_latency_us(&fig7_setup(2, Notify::Ipi, Background::Idle));
    let l48 = pingpong_latency_us(&fig7_setup(48, Notify::Ipi, Background::Idle));
    assert!(
        (l48 - l2).abs() / l2 < 0.25,
        "IPI latency must be nearly constant: {l2:.3} vs {l48:.3}"
    );
}

#[test]
fn fig7_background_noise_does_not_hurt_ipi() {
    let idle = pingpong_latency_us(&fig7_setup(12, Notify::Ipi, Background::Idle));
    let noise = pingpong_latency_us(&fig7_setup(12, Notify::Ipi, Background::Noise));
    // "The average latency is on a similar level ... compared to the
    // benchmark without background noise."
    assert!(
        noise < idle * 2.0,
        "noise must not wreck the latency: idle {idle:.3} vs noise {noise:.3}"
    );
}

// -------------------------------------------------------------- Table 1

#[test]
fn table1_shape_holds() {
    let strong = svm_overhead(Consistency::Strong, ScratchLocation::Mpb);
    let lazy = svm_overhead(Consistency::LazyRelease, ScratchLocation::Mpb);

    // Row 1: equal, and low per page.
    assert!((strong.alloc_4mib_us - lazy.alloc_4mib_us).abs() < 1.0);
    // Row 2: equal across models, dominating the table.
    assert!((strong.physical_alloc_us - lazy.physical_alloc_us).abs() < 2.0);
    assert!(strong.physical_alloc_us > 4.0 * strong.map_us);
    // Row 3: lazy mapping is several times cheaper.
    assert!(lazy.map_us * 2.0 < strong.map_us);
    // Row 4: strong-only; close below the strong mapping cost.
    let retrieve = strong.retrieve_us.expect("strong model retrieves");
    assert!(retrieve < strong.map_us);
    assert!(retrieve > strong.map_us * 0.4);
    assert!(lazy.retrieve_us.is_none());
}

// ---------------------------------------------------------------- Fig 9

#[test]
fn fig9_svm_variants_nearly_identical() {
    // At the paper's grid the per-iteration ownership faults (~2 x 9 us)
    // vanish against the compute time, which is the paper's argument for
    // the two curves coinciding.
    let p = scc_apps::laplace::LaplaceParams::paper(3);
    let strong = laplace_run(LaplaceVariant::SvmStrong, 4, p);
    let lazy = laplace_run(LaplaceVariant::SvmLazy, 4, p);
    assert_eq!(strong.checksum, lazy.checksum);
    let ratio = strong.sim_ms / lazy.sim_ms;
    assert!(
        (0.95..1.25).contains(&ratio),
        "the two SVM curves must be nearly identical (paper): ratio {ratio:.3}"
    );
}

#[test]
fn fig9_ircce_slower_than_svm_at_low_core_counts() {
    // The effect needs the paper's grid: per-core data (2 x 1 MiB at 4
    // cores) must exceed the 256 KiB L2, so that MP matrix writes go to
    // DDR3 word by word while the SVM variants combine them in the WCB.
    let p = scc_apps::laplace::LaplaceParams::paper(3);
    let mp = laplace_run(LaplaceVariant::Ircce, 4, p);
    let lazy = laplace_run(LaplaceVariant::SvmLazy, 4, p);
    assert_eq!(mp.checksum, lazy.checksum);
    assert!(
        mp.sim_ms > lazy.sim_ms,
        "below the L2 crossover the SVM variant must win (WCB): \
         iRCCE {:.2} ms vs SVM lazy {:.2} ms",
        mp.sim_ms,
        lazy.sim_ms
    );
}

#[test]
fn fig9_l2_gives_ircce_superlinear_scaling_at_high_core_counts() {
    // With 48 cores each MP block fits into the 256 KiB L2, which the SVM
    // variants must bypass (MPBT): the paper's superlinear MP drop.
    let p = scc_apps::laplace::LaplaceParams::paper(3);
    let mp12 = laplace_run(LaplaceVariant::Ircce, 12, p);
    let mp48 = laplace_run(LaplaceVariant::Ircce, 48, p);
    let speedup = mp12.sim_ms / mp48.sim_ms;
    assert!(
        speedup > 4.0 * 0.9,
        "12 -> 48 cores must be at least linear for MP (L2 kicks in): {speedup:.2}"
    );
    let lazy48 = laplace_run(LaplaceVariant::SvmLazy, 48, p);
    assert!(
        mp48.sim_ms < lazy48.sim_ms,
        "at 48 cores the L2 effect must put iRCCE ahead: \
         mp {:.2} ms vs svm {:.2} ms",
        mp48.sim_ms,
        lazy48.sim_ms
    );
}
