//! End-to-end tests for the schedule/fault explorer (`crates/explore`).
//!
//! The contract under test: the two schedule-sensitive planted bugs are
//! invisible under the default baton schedule, found by seeded-random
//! exploration within the documented seed budget, and each trigger shrinks
//! to a replay file that re-triggers deterministically. Clean apps must
//! survive a dropped-doorbell fault plan by degrading to slow polls
//! (`mbx.retries > 0`) rather than hanging.
//!
//! Checker-finding-based expectations need the `trace` feature (the
//! instrumentation stream is the checker's input); those tests are gated.
//! Deadlock-based expectations work in both feature halves.

use scc_explore::{app, explore_app, parse_replay, run_scenario, ExploreConfig, Outcome, Scenario};
use scc_hw::{Fault, FaultPlan, SchedPolicy};
use std::path::PathBuf;

fn out_dir(test: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(test)
}

fn cfg(test: &str) -> ExploreConfig {
    ExploreConfig {
        out_dir: out_dir(test),
        ..ExploreConfig::default()
    }
}

/// Both schedule-sensitive fixtures are clean under the default baton
/// schedule — that is what makes them exploration targets rather than
/// checker fixtures.
#[test]
fn schedule_fixtures_clean_under_baton() {
    for name in ["lost_wakeup_barrier", "toctou_scratchpad"] {
        let spec = app(name).expect("registered");
        let o = run_scenario(&Scenario::baseline(spec));
        assert!(
            matches!(o, Outcome::Clean { .. }),
            "{name} under baton: {}",
            o.brief()
        );
    }
}

/// The lost-wakeup barrier bug (missed flag → wait_event never satisfied →
/// whole-machine deadlock) is found within the default seed budget and the
/// shrunk replay re-triggers. Deadlock detection needs no tracing, so this
/// runs in both feature halves.
#[test]
fn explorer_finds_lost_wakeup_within_budget() {
    let cfg = cfg("explore_lost_wakeup");
    let spec = app("lost_wakeup_barrier").expect("registered");
    let report = explore_app(spec, &cfg);
    assert!(report.ok, "explorer failed: {}", report.detail);
    let seed = report.trigger_seed.expect("a triggering seed");
    assert!(
        seed <= cfg.seed_budget,
        "trigger seed {seed} beyond budget {}",
        cfg.seed_budget
    );

    // Independent replay check: parse the shrunk file ourselves and run it
    // twice — the executor is deterministic, so two identical outcomes are
    // a proof, not a sample.
    let path = report.replay_path.expect("replay written");
    let text = std::fs::read_to_string(&path).expect("replay readable");
    let (sc, expected) = parse_replay(&text).expect("replay parses");
    for round in 0..2 {
        let o = run_scenario(&sc);
        assert!(
            o.satisfies(&expected),
            "replay round {round} diverged: {}",
            o.brief()
        );
    }
}

/// The TOCTOU first-touch bug surfaces as a `double-first-touch` checker
/// finding, so it needs the instrumentation stream.
#[cfg(feature = "trace")]
#[test]
fn explorer_finds_toctou_within_budget() {
    let cfg = cfg("explore_toctou");
    let spec = app("toctou_scratchpad").expect("registered");
    let report = explore_app(spec, &cfg);
    assert!(report.ok, "explorer failed: {}", report.detail);
    assert!(report.trigger_seed.is_some());
    assert!(report.replay_path.is_some());
}

/// Every checker fixture (the six always-triggering planted bugs) fires
/// under the plain baton schedule, straight through the explorer's runner.
#[cfg(feature = "trace")]
#[test]
fn checker_fixtures_fire_under_baton() {
    for spec in scc_explore::registry().iter().filter(|s| s.always_triggers) {
        let o = run_scenario(&Scenario::baseline(spec));
        assert!(
            o.satisfies(&spec.expected),
            "{}: expected {}, got {}",
            spec.name,
            spec.expected.describe(),
            o.brief()
        );
    }
}

/// Without the `trace` feature the explorer degrades gracefully:
/// finding-based entries are skipped (not failed), deadlock-based ones
/// still explored.
#[cfg(not(feature = "trace"))]
#[test]
fn finding_expectations_skip_without_trace() {
    let cfg = cfg("explore_skip");
    let spec = app("toctou_scratchpad").expect("registered");
    let report = explore_app(spec, &cfg);
    assert!(report.skipped, "should skip, got: {}", report.detail);
    assert!(!report.ok);
}

/// A fault plan that silently drops doorbell IPIs must not hang an
/// IPI-notified workload: the resilient mailbox falls back to slow polls
/// and the run completes with `mbx.retries > 0`.
#[test]
fn dropped_ipi_degrades_to_slow_polls() {
    let spec = app("laplace_strong").expect("registered");
    let sc = Scenario {
        app: spec,
        policy: SchedPolicy::Baton,
        faults: FaultPlan {
            faults: vec![Fault::DropIpi {
                src: None,
                dst: None,
                nth: 0,
                count: 6,
            }],
        },
    };
    match run_scenario(&sc) {
        Outcome::Clean { mbx_retries, .. } => {
            assert!(
                mbx_retries > 0,
                "dropped doorbells should force retries, got 0"
            );
        }
        o => panic!("dropped-IPI run should complete clean, got {}", o.brief()),
    }
}
