//! Regression test for the ≥32-core handler-context mailbox deadlock.
//!
//! Before the software-outbox defer path, a mailbox `send` issued from
//! handler context (an ownership-protocol grant fired while servicing an
//! interrupt) would block on a full destination slot. With enough cores a
//! cycle of owners granting into each other's full slots could never
//! drain, and the executor reported a whole-machine deadlock — first
//! observed on ≥32-core strong-model SVM runs. The fix parks such sends
//! in a per-core software outbox flushed from the idle loop, counted by
//! `mbx.deferred_sends`.
//!
//! This test recreates the trigger: 33 cores hammering a single strong
//! page so grant/forward traffic saturates the mailbox slots. It fails
//! fast on regression — the executor's deadlock detector fires in virtual
//! time (no wall-clock hang), and `with_stack` converts that into a
//! panic carrying the per-core waiting report.

use integration_tests::with_stack;
use metalsvm::{Consistency, SvmArray};
use scc_mailbox::Notify;
use std::sync::atomic::Ordering;

/// One more core than the deadlock threshold observed before the fix.
const CORES: usize = 33;
const SLOTS: usize = 16;
const ROUNDS: usize = 4;

#[test]
fn hot_page_storm_at_33_cores_completes_via_software_outbox() {
    let deferred: Vec<u64> = with_stack(CORES, Notify::Ipi, |k, mbx, svm| {
        // 16 u32 slots share one strong page: every write migrates
        // ownership, so 33 cores generate a storm of request/grant mail.
        let r = svm.alloc(k, 4096, Consistency::Strong);
        let a = SvmArray::<u32>::new(r, SLOTS);
        svm.barrier(k);
        for round in 0..ROUNDS {
            let i = (k.rank() + round) % SLOTS;
            let v = a.get(k, i);
            a.set(k, i, v.wrapping_add(k.rank() as u32 + 1));
            svm.barrier(k);
        }
        mbx.stats().deferred_sends.load(Ordering::Relaxed)
    });

    // The run completing at all is the headline assertion (`with_stack`
    // panics with the executor's deadlock report otherwise). Beyond that,
    // the defer path must actually have been exercised: if no send was
    // ever parked, the workload no longer reproduces the pre-fix trigger
    // and the test has silently lost its teeth.
    let total: u64 = deferred.iter().sum();
    assert!(
        total >= 1,
        "expected the handler-context defer path to fire under a 33-core \
         hot-page storm, but mbx.deferred_sends summed to 0 — the workload \
         no longer exercises the ≥32-core deadlock trigger"
    );
}
