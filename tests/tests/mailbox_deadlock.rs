//! Regression test for the ≥32-core handler-context mailbox deadlock.
//!
//! Before the software-outbox defer path, a mailbox `send` issued from
//! handler context (an ownership-protocol grant fired while servicing an
//! interrupt) would block on a full destination slot. With enough cores a
//! cycle of owners granting into each other's full slots could never
//! drain, and the executor reported a whole-machine deadlock — first
//! observed on ≥32-core strong-model SVM runs. The fix parks such sends
//! in a per-core software outbox flushed from the idle loop, counted by
//! `mbx.deferred_sends`.
//!
//! This test recreates the trigger: 33 cores hammering a single strong
//! page so grant/forward traffic saturates the mailbox slots. It fails
//! fast on regression — the executor's deadlock detector fires in virtual
//! time (no wall-clock hang), and `with_stack` converts that into a
//! panic carrying the per-core waiting report.

use integration_tests::{with_stack, with_stack_on};
use metalsvm::{Consistency, SvmArray};
use scc_hw::Topology;
use scc_mailbox::Notify;
use std::sync::atomic::Ordering;

/// One more core than the deadlock threshold observed before the fix.
const CORES: usize = 33;
const SLOTS: usize = 16;
const ROUNDS: usize = 4;

/// The storm body: `slots` u32 cells share one strong page, so every
/// write migrates ownership and `n` cores generate a grant/forward mail
/// storm. Returns each core's deferred-send count.
fn hot_page_storm(n: usize, topo: Option<Topology>) -> Vec<u64> {
    let body = |k: &mut scc_kernel::Kernel<'_>,
                mbx: &scc_mailbox::Mailbox,
                svm: &mut metalsvm::SvmCtx| {
        let r = svm.alloc(k, 4096, Consistency::Strong);
        let a = SvmArray::<u32>::new(r, SLOTS);
        svm.barrier(k);
        for round in 0..ROUNDS {
            let i = (k.rank() + round) % SLOTS;
            let v = a.get(k, i);
            a.set(k, i, v.wrapping_add(k.rank() as u32 + 1));
            svm.barrier(k);
        }
        mbx.stats().deferred_sends.load(Ordering::Relaxed)
    };
    match topo {
        Some(t) => with_stack_on(t, n, Notify::Ipi, body),
        None => with_stack(n, Notify::Ipi, body),
    }
}

/// The run completing at all is the headline assertion (the helper
/// panics with the executor's deadlock report otherwise). Beyond that,
/// the defer path must actually have been exercised: if no send was ever
/// parked, the workload no longer reproduces the pre-fix trigger and the
/// test has silently lost its teeth.
fn assert_defer_path_fired(deferred: &[u64], what: &str) {
    let total: u64 = deferred.iter().sum();
    assert!(
        total >= 1,
        "expected the handler-context defer path to fire under a {what} \
         hot-page storm, but mbx.deferred_sends summed to 0 — the workload \
         no longer exercises the ≥32-core deadlock trigger"
    );
}

#[test]
fn hot_page_storm_at_33_cores_completes_via_software_outbox() {
    let deferred = hot_page_storm(CORES, None);
    assert_defer_path_fired(&deferred, "33-core");
}

#[test]
fn hot_page_storm_at_66_cores_on_mesh8x8_completes() {
    // The same trigger at a non-SCC shape: 66 cores of the 8x8 mesh —
    // past the 48-core die and past the 64-bit-mask boundary that any
    // per-core bitmask in the stack would trip over.
    let deferred = hot_page_storm(66, Some(Topology::mesh8x8()));
    assert_defer_path_fired(&deferred, "66-core mesh8x8");
}
