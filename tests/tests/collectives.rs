//! Flat-vs-tree collective agreement (DESIGN.md §12).
//!
//! `SccConfig::coll` selects between the paper's flat collectives (one
//! off-die barrier counter, linear root loops) and the topology-aware
//! MPB-tree versions. The modes trade shape, not semantics: a
//! barrier-only application must produce bit-identical results under
//! either, and an f64 reduction may differ only by the rounding of its
//! fold order.

use rcce::{allreduce_f64, RcceComm, ReduceOp};
use scc_apps::laplace::{laplace_reference, LaplaceParams};
use scc_bench::{laplace_run_host_on, LaplaceVariant};
use scc_hw::{CollMode, SccConfig, Topology};
use scc_kernel::Cluster;
use scc_mailbox::Notify;

fn cfg(coll: CollMode) -> SccConfig {
    SccConfig {
        coll,
        shared_bytes: 64 * 1024 * 1024,
        ..SccConfig::default()
    }
}

/// Laplace synchronises through barriers only (no f64 collectives), so
/// its checksum must not move by a single bit when the barrier shape
/// changes — under every variant, against the serial reference.
#[test]
fn laplace_results_identical_flat_vs_tree() {
    let p = LaplaceParams {
        width: 64,
        height: 32,
        iters: 4,
    };
    let want = laplace_reference(p);
    for variant in [
        LaplaceVariant::Ircce,
        LaplaceVariant::SvmStrong,
        LaplaceVariant::SvmLazy,
    ] {
        let run_mode = |coll| {
            laplace_run_host_on(cfg(coll), variant, 8, p, Notify::Ipi)
                .0
                .checksum
        };
        let flat = run_mode(CollMode::Flat);
        let tree = run_mode(CollMode::Tree);
        assert_eq!(
            flat.to_bits(),
            tree.to_bits(),
            "{}: barrier-only app diverged between collective modes",
            variant.label()
        );
        assert_eq!(flat, want, "{}: deviates from the reference", variant.label());
    }
}

/// f64 sums fold in rank order (flat) vs tree order, so bit-identity is
/// not guaranteed — but the values must agree to rounding, and Max/Min
/// (order-insensitive) must agree exactly.
#[test]
fn allreduce_flat_vs_tree_within_rounding() {
    let run_mode = |coll: CollMode, op: ReduceOp| -> Vec<f64> {
        let cl = Cluster::new(cfg(coll)).unwrap();
        let res = cl
            .run(12, |k| {
                let mut comm = RcceComm::init(k);
                let va = k.kalloc_pages(1);
                for i in 0..8u32 {
                    // Non-dyadic values: the fold order is observable in
                    // the last ulps of a Sum.
                    k.vwrite_f64(va + i * 8, 1.0 / (comm.ue() + 1) as f64 + i as f64);
                }
                allreduce_f64(k, &mut comm, va, 8, op);
                (0..8u32).map(|i| k.vread_f64(va + i * 8)).collect::<Vec<f64>>()
            })
            .unwrap();
        // Allreduce leaves every UE with the same answer.
        for r in res.iter().skip(1) {
            assert_eq!(r.result, res[0].result, "allreduce not uniform across UEs");
        }
        res.into_iter().next().unwrap().result
    };
    for op in [ReduceOp::Max, ReduceOp::Min] {
        assert_eq!(run_mode(CollMode::Flat, op), run_mode(CollMode::Tree, op));
    }
    let flat = run_mode(CollMode::Flat, ReduceOp::Sum);
    let tree = run_mode(CollMode::Tree, ReduceOp::Sum);
    for (f, t) in flat.iter().zip(&tree) {
        let rel = (f - t).abs() / f.abs().max(1.0);
        assert!(
            rel < 1e-12,
            "flat {f} vs tree {t}: beyond rounding (rel {rel:e})"
        );
    }
}

/// The tree barrier must hold up on a big mesh in one dev-profile-sized
/// case: all 128 cores of mesh8x8, interleaving skewed arrivals.
#[test]
fn tree_barrier_128_cores_skewed_arrivals() {
    let cl = Cluster::new(SccConfig {
        coll: CollMode::Tree,
        ..SccConfig::small_with(Topology::mesh8x8())
    })
    .unwrap();
    cl.run(128, |k| {
        for round in 0..3u64 {
            k.hw.advance((k.rank() as u64 * 131 + round * 977) % 9_000);
            scc_kernel::ram_barrier(k, "test.skew");
        }
    })
    .unwrap();
}
