//! Seeded conflict stress for the epoch engine's demotion machinery.
//!
//! The shadow tests (`parallel_shadow.rs`) prove bit-identity on workloads
//! that are mostly well-behaved; this file deliberately manufactures the
//! *worst* case for the conservative-lookahead engine: two cores
//! busy-polling and writing the **same** objects — one mail-slot flag word,
//! one scratchpad entry under a TAS lock, and the TAS register itself —
//! with seeded random think times, so the racing accesses land inside one
//! epoch and the per-object sequence checks must fail over to the locked
//! election path. No `wait_until` anywhere: a blocked waiter is woken by
//! its writer and resumes with the window already open, which never
//! conflicts. Symmetric busy-polling is what forces a poller to overtake
//! its partner's un-retired frontier.
//!
//! Asserted, per ISSUE 6 satellite 3:
//!   (a) final virtual clocks (and traces, when compiled in) are
//!       bit-identical to the serial baton executor, and the racy
//!       read-modify-writes lose no updates;
//!   (b) `exec.par.conflicts > 0` — the engine really did detect
//!       cross-core conflicts and serialise them — while the epoch
//!       accounting stays consistent (`demoted + conflicts == visible`).
//!
//! Run under both the default build and `--features trace` (ci/check.sh
//! does), and across host-thread caps via `SCC_PAR_HOST_THREADS` (the CI
//! matrix leg exercises 2 and 4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scc_hw::config::MPB_BYTES;
use scc_hw::mpb::MpbArray;
use scc_hw::{CoreId, HostFastPaths, Machine, MemAttr, SccConfig, TraceRing};

const WAVES: u64 = 30;

/// Everything a run exposes that must be identical across executors.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    clocks: Vec<u64>,
    /// Final value of the scratchpad counter (2 * WAVES if no RMW lost).
    scratch: u64,
    /// Sequence counter of the contended TAS register.
    tas_seq: u64,
    /// Visibility stamps of the two raced MPB lines (last writer's packed
    /// election key — schedule-dependent, so equality across executors is
    /// a real determinism check, not a tautology).
    stamps: (u64, u64),
    traces: Vec<Vec<scc_hw::TraceEvent>>,
}

/// Aggregate parallel-engine counters of one run.
#[derive(Debug, Default)]
struct ParStats {
    visible: u64,
    demoted: u64,
    conflicts: u64,
    epochs: u64,
}

fn stress(seed: u64, host_fast: HostFastPaths) -> (Fingerprint, ParStats) {
    let cfg = SccConfig {
        quantum_cycles: 1_500,
        host_fast,
        ..SccConfig::small()
    };
    let m = Machine::new(cfg).unwrap();
    // The raced objects. `flag` sits where the mailbox would place the
    // slot core 1 sends into core 0's MPB; both cores read *and* write it
    // (sender publishes the wave number, receiver clears it back to zero),
    // so no single-writer demotion applies and every gated poll must pass
    // the window/floor checks or conflict. `scratch` is a first-touch
    // scratchpad-style entry on its own line, mutated by both cores under
    // the TAS register of tile 0.
    let flag = MpbArray::pa(CoreId::new(0), 0);
    let scratch = MpbArray::pa(CoreId::new(0), MPB_BYTES - 64);
    let reg = CoreId::new(0);
    let res = m
        .run(2, |c| {
            let slot = c.id().idx();
            let mut rng = StdRng::seed_from_u64(seed ^ ((slot as u64) << 8));
            for wave in 1..=WAVES {
                c.advance(20 + rng.gen_range_u64(400));
                if slot == 1 {
                    // Sender: wait for the slot to drain, publish the wave.
                    loop {
                        c.cl1invmb();
                        if c.read(flag, 4, MemAttr::MPB) == 0 {
                            break;
                        }
                        c.advance(15 + rng.gen_range_u64(60));
                    }
                    c.write(flag, 4, wave, MemAttr::MPB);
                    c.flush_wcb();
                } else {
                    // Receiver: wait for this wave, clear the slot.
                    loop {
                        c.cl1invmb();
                        if c.read(flag, 4, MemAttr::MPB) == wave {
                            break;
                        }
                        c.advance(15 + rng.gen_range_u64(60));
                    }
                    c.write(flag, 4, 0, MemAttr::MPB);
                    c.flush_wcb();
                }
                // Both cores bump the scratchpad entry under the TAS lock,
                // busy-spinning on the register (tas_try never blocks).
                while !c.tas_try(reg) {
                    c.advance(10 + rng.gen_range_u64(50));
                }
                c.cl1invmb();
                let v = c.read(scratch, 4, MemAttr::MPB);
                c.advance(5 + rng.gen_range_u64(45));
                c.write(scratch, 4, v + 1, MemAttr::MPB);
                c.flush_wcb();
                c.tas_unlock(reg);
            }
        })
        .unwrap();
    let mut stats = ParStats::default();
    for r in &res {
        stats.visible += r.perf.par_visible_ops;
        stats.demoted += r.perf.par_demoted_ops;
        stats.conflicts += r.perf.par_conflicts;
        stats.epochs += r.perf.par_epochs;
    }
    let fp = Fingerprint {
        clocks: res.iter().map(|r| r.clock.as_u64()).collect(),
        scratch: m.inner().mpb.read(scratch, 4),
        tas_seq: m.inner().tas.seq(reg),
        stamps: (
            m.inner().mpb.stamp_of(flag),
            m.inner().mpb.stamp_of(scratch),
        ),
        traces: res.iter().map(|r| r.trace.events().to_vec()).collect(),
    };
    (fp, stats)
}

/// The satellite test: same-object races inside one epoch, three seeds.
#[test]
fn same_object_races_conflict_but_stay_deterministic() {
    let mut total_conflicts = 0;
    for seed in 1..=3u64 {
        let (ser, ser_stats) = stress(seed, HostFastPaths::default());
        let (par, par_stats) = stress(seed, HostFastPaths::parallel());
        // (a) bit-identical outcome, including the racy RMW counter and
        // the schedule-dependent visibility stamps.
        assert_eq!(ser, par, "fingerprint diverged (seed={seed})");
        assert_eq!(ser.scratch, 2 * WAVES, "lost RMW update (seed={seed})");
        // Each wave is one acquire/release pair per core: 4 seq bumps.
        assert_eq!(ser.tas_seq, 4 * WAVES);
        if TraceRing::compiled_in() {
            assert!(par.traces.iter().all(|t| !t.is_empty()));
        }
        // (b) the epoch accounting holds; the serial engine counts nothing.
        assert_eq!(ser_stats.visible, 0);
        assert_eq!(
            par_stats.demoted + par_stats.conflicts,
            par_stats.visible,
            "counter invariant broken (seed={seed})"
        );
        assert!(par_stats.demoted > 0, "no demoted ops (seed={seed})");
        assert!(par_stats.epochs > 0, "no epochs (seed={seed})");
        total_conflicts += par_stats.conflicts;
    }
    // Cross-core conflict on the shared slot/scratchpad/TAS register must
    // actually trip the locked path — that is the point of this workload.
    assert!(
        total_conflicts > 0,
        "same-object races never conflicted: the engine cannot have \
         ordered them"
    );
}
