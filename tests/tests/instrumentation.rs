//! Tests of the unified instrumentation layer: the one metrics registry
//! (always on) and the structured-event trace (`--features trace`).
//!
//! The trace shadow tests mirror the host fast-path shadow tests: turning
//! event recording on must leave every simulated clock bit-identical,
//! because `CoreCtx::trace` only reads the virtual clock, never advances
//! it.

use metalsvm::{install as svm_install, Consistency, SvmArray, SvmConfig};
use scc_apps::laplace::LaplaceParams;
use scc_bench::{laplace_run, LaplaceVariant};
use scc_hw::{MetricsSnapshot, MetricsSource, SccConfig};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

#[test]
fn one_registry_reaches_every_layer() {
    let p = LaplaceParams::tiny();
    let run = laplace_run(LaplaceVariant::SvmStrong, 2, p);
    let m = &run.metrics;
    // Hardware, executor, kernel, SVM protocol and mailbox counters all
    // arrive through the single snapshot — no bespoke structs needed.
    for label in [
        "hw.l1_hits",
        "hw.ram_reads",
        "hw.wcb_flushes",
        "exec.yields",
        "kernel.tlb_hits",
        "svm.faults",
        "svm.ownership_transfers",
        "mbx.sent",
        "mbx.received",
    ] {
        assert!(
            m.get(label) > 0,
            "label {label} must be live in a strong-model run:\n{}",
            m.render()
        );
    }
    // The strong model maps pages exclusively; a 2-core run must have
    // transferred ownership at least once per halo exchange.
    assert!(m.get("svm.ownership_transfers") >= 1);
    assert_eq!(
        m.get("mbx.sent"),
        m.get("mbx.received"),
        "every mail sent must be received"
    );
}

#[test]
fn all_three_legacy_snapshots_flow_through_the_registry() {
    // PerfCounters, TlbSnapshot and SvmStatsSnapshot — formerly three
    // bespoke printing paths — are all MetricsSources now.
    let cl = Cluster::new(SccConfig::small()).unwrap();
    let res = cl
        .run(2, |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());
            // Strong model: the remote read forces an ownership request,
            // so the mailbox sees real traffic.
            let r = svm.alloc(k, 8192, Consistency::Strong);
            let a = SvmArray::<u64>::new(r, 16);
            if k.rank() == 0 {
                a.set(k, 0, 9);
            }
            svm.barrier(k);
            assert_eq!(a.get(k, 0), 9);
            svm.barrier(k);

            let mut m = MetricsSnapshot::new();
            k.tlb_snapshot().metrics_into(&mut m);
            mbx.stats().metrics_into(&mut m);
            if k.rank() == 0 {
                svm.shared().stats.metrics_into(&mut m);
            }
            m
        })
        .unwrap();
    let mut total = MetricsSnapshot::new();
    for r in &res {
        r.perf.metrics_into(&mut total); // hw.* / exec.* / kernel.*
        total.merge(&r.result);
    }
    assert!(total.get("kernel.tlb_live_entries") > 0);
    assert!(total.get("svm.first_touch_allocs") >= 1);
    assert!(total.get("mbx.checks") > 0);
    assert!(total.get("hw.l1_hits") > 0);
    // diff() measures an interval: against itself everything is zero but
    // every label survives.
    let d = total.diff(&total);
    assert_eq!(d.len(), total.len());
    assert!(d.iter().all(|(_, v)| v == 0));
}

#[cfg(feature = "trace")]
mod traced {
    use super::*;
    use scc_bench::laplace_run_traced;
    use scc_hw::instr::{chrome_trace_json, protocol_log, EventKind, TraceConfig};
    use scc_hw::TraceRing;

    #[test]
    fn event_times_are_monotone_per_core() {
        assert!(TraceRing::compiled_in());
        let p = LaplaceParams::tiny();
        let (_, rings) =
            laplace_run_traced(LaplaceVariant::SvmStrong, 4, p, TraceConfig::default());
        let mut total = 0usize;
        for (core, ring) in &rings {
            let events = ring.events();
            total += events.len();
            for w in events.windows(2) {
                assert!(
                    w[0].t <= w[1].t,
                    "core {core:?}: events out of order ({} > {})",
                    w[0].t,
                    w[1].t
                );
            }
        }
        assert!(total > 0, "a traced run must record events");
    }

    #[test]
    fn protocol_events_reach_the_exporters() {
        let p = LaplaceParams::tiny();
        let (_, rings) =
            laplace_run_traced(LaplaceVariant::SvmStrong, 4, p, TraceConfig::default());
        let kinds: std::collections::HashSet<EventKind> = rings
            .iter()
            .flat_map(|(_, r)| r.events())
            .map(|e| e.kind)
            .collect();
        // The five-step ownership migration (Figure 5)...
        for k in [
            EventKind::PageFault,
            EventKind::OwnRequest,
            EventKind::OwnGrant,
            EventKind::OwnAck,
            EventKind::OwnAcquired,
            // ...rides on the mailbox...
            EventKind::MailSend,
            EventKind::MailRecv,
            // ...and the consistency hooks flush and invalidate.
            EventKind::WcbFlush,
            EventKind::Cl1Invmb,
            EventKind::Barrier,
        ] {
            assert!(kinds.contains(&k), "missing {k:?}; captured {kinds:?}");
        }

        let mhz = SccConfig::default().timing.core_mhz;
        let json = chrome_trace_json(rings.iter().map(|(c, r)| (*c, r)), mhz);
        for needle in ["own_request", "own_grant", "mail_send", "wcb_flush", "cl1invmb"] {
            assert!(json.contains(needle), "chrome trace must mention {needle}");
        }
        assert!(json.trim_start().starts_with('['), "must be a JSON array");
        assert!(json.trim_end().ends_with(']'));

        let log = protocol_log(rings.iter().map(|(c, r)| (*c, r)));
        assert!(log.lines().count() > 10);
        assert!(log.contains("svm.own_request"));
    }

    #[test]
    fn lock_events_capture_acquire_and_release() {
        let cfg = SccConfig {
            trace: TraceConfig::full(1 << 12),
            ..SccConfig::small()
        };
        let cl = Cluster::new(cfg).unwrap();
        let res = cl
            .run(2, |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, SvmConfig::default());
                let r = svm.alloc(k, 4096, Consistency::LazyRelease);
                let a = SvmArray::<u64>::new(r, 8);
                let lock = svm.lock_new(k);
                for _ in 0..4 {
                    lock.with(k, |k| {
                        let v = a.get(k, 0);
                        a.set(k, 0, v + 1);
                    });
                }
                svm.barrier(k);
                assert_eq!(a.get(k, 0), 8);
                svm.barrier(k);
            })
            .unwrap();
        for r in &res {
            let kinds: Vec<EventKind> = r.trace.events().iter().map(|e| e.kind).collect();
            let acquires = kinds.iter().filter(|k| **k == EventKind::AcquireInv).count();
            let releases = kinds.iter().filter(|k| **k == EventKind::ReleaseFlush).count();
            assert_eq!(acquires, 4, "core {:?}: {kinds:?}", r.core);
            assert_eq!(releases, 4);
            // Acquire must precede its release in program (= time) order.
            let first_acq = kinds.iter().position(|k| *k == EventKind::AcquireInv);
            let first_rel = kinds.iter().position(|k| *k == EventKind::ReleaseFlush);
            assert!(first_acq < first_rel);
        }
    }

    #[test]
    fn tracing_never_perturbs_simulated_clocks() {
        // The trace analogue of the fast-path shadow tests, on the full
        // stack: identical per-core final clocks with recording on, off at
        // runtime (capacity 0), and fully masked.
        let run = |trace: TraceConfig| {
            let cfg = SccConfig {
                trace,
                ..SccConfig::small()
            };
            let cl = Cluster::new(cfg).unwrap();
            cl.run(4, |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, SvmConfig::default());
                let r = svm.alloc(k, 16384, Consistency::Strong);
                let a = SvmArray::<u64>::new(r, 64);
                for round in 0..6u64 {
                    if k.rank() == (round % 4) as usize {
                        let v = a.get(k, 0);
                        a.set(k, 0, v + round);
                    }
                    svm.barrier(k);
                }
                a.get(k, 0)
            })
            .unwrap()
            .into_iter()
            .map(|r| (r.result, r.clock.as_u64()))
            .collect::<Vec<_>>()
        };
        let traced = run(TraceConfig::full(1 << 12));
        let disabled = run(TraceConfig::disabled());
        let masked = run(TraceConfig {
            per_core_capacity: 1 << 12,
            mask: 0,
        });
        assert_eq!(traced, disabled, "recording must not move virtual time");
        assert_eq!(traced, masked);
    }

    #[test]
    fn traced_laplace_matches_untraced_bit_for_bit() {
        let p = LaplaceParams::tiny();
        let (traced, rings) =
            laplace_run_traced(LaplaceVariant::SvmLazy, 4, p, TraceConfig::default());
        let (shadow, empty) =
            laplace_run_traced(LaplaceVariant::SvmLazy, 4, p, TraceConfig::disabled());
        assert_eq!(traced.checksum, shadow.checksum);
        assert_eq!(traced.sim_ms, shadow.sim_ms);
        assert_eq!(traced.metrics, shadow.metrics);
        assert!(rings.iter().any(|(_, r)| !r.is_empty()));
        assert!(empty.iter().all(|(_, r)| r.is_empty()));
    }
}
