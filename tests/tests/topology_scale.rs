//! Scale acceptance for the configurable topology (DESIGN.md §11): the
//! Laplace solver on the full 512-core `mesh16x32` preset.
//!
//! Everything the 48-core acceptance tests assert must survive a 10×
//! machine: the run completes under the serial baton executor AND the
//! parallel conservative executor with bit-identical checksum, simulated
//! time and per-core virtual clocks; with the `trace` feature compiled
//! in, svm-check replays both runs' protocol event streams and must come
//! back finding-free. At this scale the SVM layer is exercised in its
//! sharded configuration: 512 cores overflow the MPB first-touch table,
//! so `ScratchLocation::Auto` resolves to the per-memory-controller
//! ownership directories.

use metalsvm::ScratchLocation;
use scc_apps::laplace::LaplaceParams;
use scc_bench::{laplace_run_host_on, LaplaceVariant};
use scc_hw::instr::TraceConfig;
use scc_hw::{HostFastPaths, SccConfig, Topology, TraceRing};
use scc_mailbox::Notify;

/// One core per grid row: 512 ranks, two Jacobi iterations. Width 512
/// keeps the layout representative of the Figure 9 grids — each row
/// spans about a page, so boundary pages are shared by two or three
/// neighbours, like the paper's. Even so, neighbour halo ping-pong
/// produces ownership-grant chains denser than a scheduling quantum,
/// which is exactly the clock-slop regime the protocol monitor's
/// deferred chain links exist for (protocol.rs "Clock slop and deferred
/// chain links") — this run is the checker's largest soundness witness.
const GRID: LaplaceParams = LaplaceParams {
    width: 512,
    height: 512,
    iters: 2,
};

/// The 512-core machine: `small()`-sized private memory (the SVM variants
/// keep the grid in shared memory) and 32 MiB of shared — the 512
/// receivers' off-die mailbox slot rows alone need 8 MiB.
fn cfg_512(host_fast: HostFastPaths) -> SccConfig {
    // 2^17 events per core: the final checksum reduction migrates every
    // page to rank 0, whose ring carries the whole machine's grant
    // traffic — at 2^14 it wraps and the checker's absence-based checks
    // lose their soundness gate.
    let trace = if TraceRing::compiled_in() {
        TraceConfig::full(1 << 17)
    } else {
        TraceConfig::disabled()
    };
    SccConfig {
        shared_bytes: 32 * 1024 * 1024,
        host_fast,
        trace,
        ..SccConfig::small_with(Topology::mesh16x32())
    }
}

#[cfg(feature = "trace")]
fn assert_svmcheck_clean(obs: &[scc_bench::LaplaceCoreObs], what: &str) {
    use scc_checker::check_rings;
    assert!(
        obs.iter().all(|o| o.trace.overwritten() == 0),
        "{what}: ring wrapped — grow per_core_capacity so absence checks \
         stay sound"
    );
    let rep = check_rings(obs.iter().map(|o| (o.core, &o.trace)));
    assert!(
        rep.findings.is_empty(),
        "{what}: svm-check must be clean at 512 cores, got:\n{}",
        rep.render_text()
    );
}

#[cfg(not(feature = "trace"))]
fn assert_svmcheck_clean(_obs: &[scc_bench::LaplaceCoreObs], _what: &str) {}

/// Ignored in the default (dev-profile) test run: four 512-core Laplace
/// executions are minutes of CPU without release optimisation.
/// `ci/check.sh` runs it in release with the `trace` feature, where the
/// svm-check half of the assertion is live.
#[test]
#[ignore = "scale acceptance: run in release via ci/check.sh"]
fn laplace_512core_mesh16x32_serial_parallel_svmcheck_clean() {
    let topo = Topology::mesh16x32();
    assert_eq!(topo.num_cores(), 512);
    // The scale point of the test: at 512 cores `Auto` resolves to the
    // sharded per-MC directories for any table size, so the runs below
    // exercise them rather than the flat MPB scratch table.
    assert_eq!(
        ScratchLocation::Auto.resolve(512, 1),
        ScratchLocation::ShardedMc
    );
    for variant in [LaplaceVariant::SvmStrong, LaplaceVariant::SvmLazy] {
        let (ser_run, ser_obs) = laplace_run_host_on(
            cfg_512(HostFastPaths::default()),
            variant,
            512,
            GRID,
            Notify::Poll,
        );
        assert_svmcheck_clean(&ser_obs, "serial");
        let ser_clocks: Vec<u64> = ser_obs.iter().map(|o| o.clock).collect();
        drop(ser_obs); // 512 trace rings — release before the second run

        let (par_run, par_obs) = laplace_run_host_on(
            cfg_512(HostFastPaths::parallel()),
            variant,
            512,
            GRID,
            Notify::Poll,
        );
        assert_svmcheck_clean(&par_obs, "parallel");
        let par_clocks: Vec<u64> = par_obs.iter().map(|o| o.clock).collect();

        assert_eq!(
            ser_run.checksum,
            par_run.checksum,
            "checksum diverged at 512 cores ({})",
            variant.label()
        );
        assert_eq!(
            ser_run.sim_ms,
            par_run.sim_ms,
            "simulated time diverged at 512 cores ({})",
            variant.label()
        );
        assert_eq!(ser_clocks.len(), 512);
        assert_eq!(
            ser_clocks,
            par_clocks,
            "per-core virtual clocks diverged at 512 cores ({})",
            variant.label()
        );
        // The parallel engine must actually have run its machinery.
        assert!(par_run.metrics.get("exec.par.windows") > 0);
        assert_eq!(ser_run.metrics.get("exec.par.windows"), 0);
    }
}
