//! Shadow-mode determinism for the parallel conservative executor.
//!
//! `host_fast.parallel` runs the simulated cores on concurrent host
//! threads, serialising only at globally visible operations (DESIGN.md
//! §8). It is a host-performance mode only: simulated virtual time, every
//! per-core trace, and the global order of visible operations must be
//! bit-identical to the serial baton executor. These tests run the same
//! workloads under both executors and compare exactly.
//!
//! Run under both the default build and `--features trace` (ci/check.sh
//! does): with tracing compiled in, the per-core event rings are compared
//! event for event.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scc_apps::laplace::LaplaceParams;
use scc_bench::{laplace_run_host_notify, LaplaceVariant};
use scc_hw::instr::TraceConfig;
use scc_hw::{CoreId, HostFastPaths, HwError, Machine, MemAttr, SccConfig, TraceRing};
use scc_mailbox::Notify;
use std::sync::{Arc, Mutex};

fn both_modes() -> [(&'static str, HostFastPaths); 2] {
    [
        ("serial", HostFastPaths::default()),
        ("parallel", HostFastPaths::parallel()),
    ]
}

/// The tentpole acceptance test: the 48-core Laplace run of Figure 9, all
/// three variants, must produce bit-identical checksums, per-core virtual
/// clocks and (with the `trace` feature) per-core event traces with the
/// parallel executor on vs off. The parallel executor does not support
/// IPIs, so both sides use polling-mode mailbox notification.
#[test]
fn laplace_48core_bit_identical_parallel_vs_serial() {
    let p = LaplaceParams {
        width: 64,
        height: 96,
        iters: 2,
    };
    let trace = if TraceRing::compiled_in() {
        TraceConfig::full(1 << 14)
    } else {
        TraceConfig::disabled()
    };
    for variant in [
        LaplaceVariant::Ircce,
        LaplaceVariant::SvmStrong,
        LaplaceVariant::SvmLazy,
    ] {
        let (ser_run, ser_obs) = laplace_run_host_notify(
            variant,
            48,
            p,
            HostFastPaths::default(),
            Notify::Poll,
            trace,
        );
        let (par_run, par_obs) = laplace_run_host_notify(
            variant,
            48,
            p,
            HostFastPaths::parallel(),
            Notify::Poll,
            trace,
        );
        assert_eq!(
            ser_run.checksum,
            par_run.checksum,
            "checksum diverged ({})",
            variant.label()
        );
        assert_eq!(
            ser_run.sim_ms,
            par_run.sim_ms,
            "simulated time diverged ({})",
            variant.label()
        );
        assert_eq!(ser_obs.len(), 48);
        for (s, q) in ser_obs.iter().zip(&par_obs) {
            assert_eq!(s.core, q.core);
            assert_eq!(
                s.clock,
                q.clock,
                "virtual clock of {:?} diverged ({})",
                s.core,
                variant.label()
            );
            if TraceRing::compiled_in() {
                assert!(!s.trace.is_empty(), "trace build must record events");
                assert_eq!(
                    s.trace.events(),
                    q.trace.events(),
                    "event trace of {:?} diverged ({})",
                    s.core,
                    variant.label()
                );
            }
        }
        // The parallel engine must actually have exercised its machinery
        // (windows retired, visible ops ordered) and surface it in the
        // unified metrics registry.
        assert!(par_run.metrics.get("exec.par.windows") > 0);
        assert!(par_run.metrics.get("exec.par.visible_ops") > 0);
        assert_eq!(ser_run.metrics.get("exec.par.windows"), 0);
        // The epoch machinery must have demoted the bulk of the order
        // points lock-free: every visible op is either demoted or a
        // conflict, and real workloads must be demotion-dominated.
        let visible = par_run.metrics.get("exec.par.visible_ops");
        let demoted = par_run.metrics.get("exec.par.demoted_ops");
        let conflicts = par_run.metrics.get("exec.par.conflicts");
        assert_eq!(demoted + conflicts, visible, "{}", variant.label());
        assert!(demoted > 0, "no demoted ops ({})", variant.label());
        assert!(par_run.metrics.get("exec.par.epochs") > 0);
        assert!(
            demoted >= 10 * conflicts.max(1),
            "demotion must dominate: {demoted} demoted vs {conflicts} \
             conflicts ({})",
            variant.label()
        );
    }
}

/// One seeded wave workload at the bare-machine level. Core 0 publishes
/// wave numbers; the others wait for each wave, burn a random amount of
/// virtual time, take a TAS lock now and then, and perform a visible
/// uncached write. Returns the final per-core clocks and the *global*
/// order of visible operations: the log push happens right after the
/// visible write, while the writer still holds the safe window (parallel)
/// or the baton (serial), so the log order equals the election order and
/// is comparable across modes.
fn wave_obs(
    ncores: usize,
    quantum: u64,
    seed: u64,
    host_fast: HostFastPaths,
) -> (Vec<u64>, Vec<(usize, u64)>) {
    const WAVES: u64 = 6;
    let cfg = SccConfig {
        quantum_cycles: quantum,
        host_fast,
        ..SccConfig::small()
    };
    let m = Machine::new(cfg).unwrap();
    let shared = m.inner().map.shared_base();
    let log: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
    let res = m
        .run(ncores, |c| {
            let slot = c.id().idx();
            let mut rng = StdRng::seed_from_u64(seed ^ ((slot as u64) << 8));
            let reg = CoreId::new(0);
            for wave in 1..=WAVES {
                c.advance(50 + rng.gen_range_u64(7_950));
                if slot == 0 {
                    // Publish the wave under the TAS lock (covers the
                    // lock/unlock paths under contention).
                    c.tas_lock(reg);
                    c.write(shared, 4, wave, MemAttr::UNCACHED);
                    log.lock().unwrap().push((slot, c.now()));
                    c.tas_unlock(reg);
                } else {
                    let mach = Arc::clone(c.machine());
                    c.wait_until("the next wave", move || {
                        let v = mach.ram.read(shared, 4);
                        (v >= wave).then_some(((), 0))
                    });
                    if rng.gen_range_u64(10) < 4 {
                        c.tas_lock(reg);
                        c.advance(10 + rng.gen_range_u64(490));
                        c.tas_unlock(reg);
                    }
                    c.write(shared + 64 * slot as u32, 4, wave, MemAttr::UNCACHED);
                    log.lock().unwrap().push((slot, c.now()));
                }
            }
            c.now()
        })
        .unwrap();
    (
        res.iter().map(|r| r.clock.as_u64()).collect(),
        log.into_inner().unwrap(),
    )
}

/// Seeded randomized stress: wave workloads over varying core counts and
/// scheduling quanta. The global visible-operation order and every final
/// clock must match the serial oracle exactly.
#[test]
fn randomized_waves_global_order_identical() {
    for &ncores in &[2usize, 5, 8] {
        for &quantum in &[1_000u64, 20_000] {
            for seed in 1..=3u64 {
                let (ser_clocks, ser_log) =
                    wave_obs(ncores, quantum, seed, HostFastPaths::default());
                let (par_clocks, par_log) =
                    wave_obs(ncores, quantum, seed, HostFastPaths::parallel());
                assert_eq!(
                    ser_clocks, par_clocks,
                    "clocks diverged (n={ncores}, q={quantum}, seed={seed})"
                );
                assert_eq!(
                    ser_log, par_log,
                    "visible-op order diverged (n={ncores}, q={quantum}, seed={seed})"
                );
            }
        }
    }
}

/// Deadlock detection must fire under both executors with the same report:
/// same waiting set, same reasons, same "<finished>" markers.
#[test]
fn deadlock_reports_equivalent() {
    let report = |host_fast: HostFastPaths| {
        let cfg = SccConfig {
            host_fast,
            ..SccConfig::small()
        };
        let m = Machine::new(cfg).unwrap();
        m.run(3, |c| match c.id().idx() {
            0 => c.advance(500), // finishes normally
            1 => c.wait_until("a flag that never rises", || None::<((), u64)>),
            _ => {
                c.advance(100);
                c.wait_until("a mail that never arrives", || None::<((), u64)>)
            }
        })
        .unwrap_err()
    };
    let ser = report(HostFastPaths::default());
    let par = report(HostFastPaths::parallel());
    match (&ser, &par) {
        (HwError::Deadlock { waiting: a }, HwError::Deadlock { waiting: b }) => {
            assert_eq!(a, b, "deadlock reports must match the serial oracle");
            assert_eq!(a[0].1, "<finished>");
            assert!(a[1].1.contains("never rises"));
            assert!(a[2].1.contains("never arrives"));
        }
        other => panic!("expected two deadlock reports, got {other:?}"),
    }
}

/// Sending an IPI under the parallel executor is a configuration error and
/// must surface as a typed [`HwError::ParUnsupported`] the program can
/// handle, not corrupt determinism silently (and not a panic, as before).
#[test]
fn parallel_rejects_ipis() {
    let cfg = SccConfig {
        host_fast: HostFastPaths::parallel(),
        ..SccConfig::small()
    };
    let m = Machine::new(cfg).unwrap();
    let errs: Vec<Option<String>> = m
        .run(2, |c| {
            if c.id().idx() == 0 {
                match c.send_ipi(CoreId::new(1)) {
                    Err(HwError::ParUnsupported { what }) => Some(what),
                    other => panic!("expected ParUnsupported, got {other:?}"),
                }
            } else {
                c.advance(10);
                None
            }
        })
        .unwrap()
        .into_iter()
        .map(|r| r.result)
        .collect();
    let what = errs[0].as_deref().expect("core 0 must get the typed error");
    assert!(what.contains("send_ipi"), "error names the operation: {what}");
    assert!(errs[1].is_none());

    // The serial executor still delivers the same IPI fine.
    let m = Machine::new(SccConfig::small()).unwrap();
    m.run(2, |c| {
        if c.id().idx() == 0 {
            c.send_ipi(CoreId::new(1)).unwrap();
        } else {
            let mach = Arc::clone(c.machine());
            let id = c.id();
            c.wait_until("the doorbell", move || {
                mach.gic.has_pending(id).then_some(((), 0))
            });
        }
    })
    .unwrap();
}

/// Both executor modes agree even when nothing ever blocks: pure compute
/// with quantum yields (the maximal run-ahead case).
#[test]
fn pure_compute_clocks_identical() {
    for (_, host_fast) in both_modes() {
        let cfg = SccConfig {
            host_fast,
            ..SccConfig::small()
        };
        let m = Machine::new(cfg).unwrap();
        let clocks: Vec<u64> = m
            .run(6, |c| {
                for i in 0..400u64 {
                    c.advance(37 + (i % 11) * 3);
                }
                c.now()
            })
            .unwrap()
            .iter()
            .map(|r| r.clock.as_u64())
            .collect();
        let expect: u64 = (0..400u64).map(|i| 37 + (i % 11) * 3).sum();
        assert_eq!(clocks, vec![expect; 6]);
    }
}
