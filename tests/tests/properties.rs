//! Randomised-input tests on the core data structures and on the
//! consistency invariants of the full stack.
//!
//! Formerly written against proptest; the build environment is offline, so
//! the same properties are now driven by a small deterministic generator.
//! Coverage is equivalent in spirit: each property runs many independently
//! seeded cases over the same input domains, and a failing case is
//! reproducible from its printed seed.

use scc_hw::cache::{Cache, Wcb};
use scc_hw::config::{CacheGeom, LINE_BYTES};
use scc_hw::ram::AtomicWords;
use scc_kernel::paging::{PageFlags, PageTable};
use std::collections::HashMap;

/// SplitMix64 — the deterministic case generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
    fn bool(&mut self) -> bool {
        self.next() & 1 != 0
    }
}

// ------------------------------------------------------------ AtomicWords

/// Any sequence of byte-granular writes behaves like a plain byte array.
#[test]
fn atomic_words_match_byte_array() {
    for case in 0..64u64 {
        let mut g = Gen::new(case);
        let w = AtomicWords::new(256);
        let mut model = [0u8; 256];
        for _ in 0..g.range(1, 64) {
            let len = g.range(1, 9) as usize;
            let off = (g.range(0, 252) as u32).min(256 - len as u32);
            let val = g.next();
            w.write(off, len, val);
            for k in 0..len {
                model[off as usize + k] = (val >> (k * 8)) as u8;
            }
            let got = w.read(off, len);
            let mut want = 0u64;
            for k in 0..len {
                want |= (model[off as usize + k] as u64) << (k * 8);
            }
            assert_eq!(got, want, "case {case}");
        }
        for i in 0..256u32 {
            assert_eq!(w.read(i, 1) as u8, model[i as usize], "case {case}");
        }
    }
}

/// A cache with any mix of fills, write-through hits and invalidations
/// never returns a value that was not the most recent write (single core;
/// cross-core staleness is intentional and tested elsewhere).
#[test]
fn cache_single_core_coherent() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x1000 + case);
        let mut cache = Cache::new(CacheGeom { size: 256, assoc: 2 });
        let mut backing: HashMap<u32, [u8; LINE_BYTES]> = HashMap::new();
        for _ in 0..g.range(1, 128) {
            let la = g.range(0, 32) as u32;
            let off = g.range(0, 7) as usize * 4; // aligned 4-byte accesses
            let val = g.next() as u32;
            let mpbt = g.bool();
            // Read path: fill on miss from backing.
            if cache.read(la, off, 4).is_none() {
                let line = *backing.entry(la).or_insert([0; LINE_BYTES]);
                cache.fill(la, line, mpbt);
            }
            // Write-through: update cache if present and backing always.
            cache.write_if_present(la, off, 4, val as u64, true);
            let line = backing.entry(la).or_insert([0; LINE_BYTES]);
            line[off..off + 4].copy_from_slice(&val.to_le_bytes());
            // The next read must see the write.
            let got = cache.read(la, off, 4).expect("just filled");
            assert_eq!(got as u32, val, "case {case}");
        }
    }
}

/// The WCB's overlay always reflects the newest buffered bytes, and a
/// flush carries exactly the buffered bytes.
#[test]
fn wcb_overlay_and_flush_consistent() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x2000 + case);
        let mut wcb = Wcb::new();
        let mut model: [Option<u8>; LINE_BYTES] = [None; LINE_BYTES];
        let la = 7;
        for _ in 0..g.range(1, 32) {
            let len = g.range(1, 9) as usize;
            let off = (g.range(0, LINE_BYTES as u64) as usize).min(LINE_BYTES - len);
            let val = g.next();
            let flushed = wcb.merge(la, off, len, val);
            assert!(flushed.is_none(), "single line never self-flushes");
            for k in 0..len {
                model[off + k] = Some((val >> (k * 8)) as u8);
            }
        }
        // Overlay over a zero value must reproduce the model.
        for (i, &m) in model.iter().enumerate() {
            let v = wcb.overlay(la, i, 1, 0) as u8;
            assert_eq!(v, m.unwrap_or(0), "case {case}");
        }
        let f = wcb.take().expect("dirty");
        for (i, &m) in model.iter().enumerate() {
            let buffered = f.mask & (1 << i) != 0;
            assert_eq!(buffered, m.is_some(), "case {case}");
            if buffered {
                assert_eq!(f.data[i], m.unwrap(), "case {case}");
            }
        }
    }
}

/// The two-level page table behaves like a map from page number to
/// (pfn, flags).
#[test]
fn page_table_matches_map() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x3000 + case);
        let mut pt = PageTable::new();
        let mut model: HashMap<u32, u32> = HashMap::new();
        for _ in 0..g.range(1, 128) {
            let va = g.next() as u32;
            let pfn = g.range(0, 0xFFFFF) as u32;
            let unmap = g.bool();
            let page = va & !0xfff;
            if unmap {
                pt.unmap(page);
                model.remove(&page);
            } else {
                pt.map(page, pfn, PageFlags::shared_rw());
                model.insert(page, pfn);
            }
            match model.get(&page) {
                Some(&want) => {
                    let pte = pt.lookup(va);
                    assert!(pte.flags().present(), "case {case}");
                    assert_eq!(pte.pfn(), want, "case {case}");
                }
                None => assert!(!pt.lookup(va).flags().present(), "case {case}"),
            }
        }
        assert_eq!(pt.mapped_pages(), model.len(), "case {case}");
    }
}

// ----------------------------------------------------- full-stack invariants

use integration_tests::with_stack;
use metalsvm::{Consistency, SvmArray};
use scc_mailbox::Notify;

/// Lazy-release SVM with barrier separation behaves like one shared array
/// for any single-writer-per-round schedule.
#[test]
fn svm_lazy_single_writer_rounds_linearise() {
    for case in 0..8u64 {
        let mut g = Gen::new(0x4000 + case);
        let writes: Vec<(usize, usize, u32)> = (0..g.range(1, 12))
            .map(|_| {
                (
                    g.range(0, 3) as usize,
                    g.range(0, 32) as usize,
                    g.next() as u32,
                )
            })
            .collect();
        let writes2 = writes.clone();
        let results = with_stack(3, Notify::Ipi, move |k, _mbx, svm| {
            let r = svm.alloc(k, 4096, Consistency::LazyRelease);
            let a = SvmArray::<u32>::new(r, 32);
            svm.barrier(k);
            for (writer, idx, val) in &writes2 {
                if k.rank() == *writer {
                    a.set(k, *idx, *val);
                }
                svm.barrier(k);
            }
            (0..32).map(|i| a.get(k, i)).collect::<Vec<u32>>()
        });
        let mut model = [0u32; 32];
        for (_, idx, val) in &writes {
            model[*idx] = *val;
        }
        for r in &results {
            assert_eq!(&r[..], &model[..], "case {case}");
        }
    }
}

/// The same under the strong model (ownership migration per access).
#[test]
fn svm_strong_single_writer_rounds_linearise() {
    for case in 0..8u64 {
        let mut g = Gen::new(0x5000 + case);
        let writes: Vec<(usize, usize, u32)> = (0..g.range(1, 8))
            .map(|_| {
                (
                    g.range(0, 2) as usize,
                    g.range(0, 16) as usize,
                    g.next() as u32,
                )
            })
            .collect();
        let writes2 = writes.clone();
        let results = with_stack(2, Notify::Ipi, move |k, _mbx, svm| {
            let r = svm.alloc(k, 4096, Consistency::Strong);
            let a = SvmArray::<u32>::new(r, 16);
            svm.barrier(k);
            for (writer, idx, val) in &writes2 {
                if k.rank() == *writer {
                    a.set(k, *idx, *val);
                }
                svm.barrier(k);
            }
            (0..16).map(|i| a.get(k, i)).collect::<Vec<u32>>()
        });
        let mut model = [0u32; 16];
        for (_, idx, val) in &writes {
            model[*idx] = *val;
        }
        for r in &results {
            assert_eq!(&r[..], &model[..], "case {case}");
        }
    }
}

// ------------------------------------------------------- mailbox fuzzing

use scc_hw::{CoreId, SccConfig};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, MailKind};

/// Random many-to-one mail streams arrive completely and in per-sender
/// order, under both notification strategies.
#[test]
fn mailbox_streams_preserve_per_sender_order() {
    for case in 0..6u64 {
        let mut g = Gen::new(0x6000 + case);
        let counts: Vec<u8> = (0..3).map(|_| g.range(1, 12) as u8).collect();
        let notify = if g.bool() { Notify::Ipi } else { Notify::Poll };
        let counts2 = counts.clone();
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(4, move |k| {
                let mbx = mbx_install(k, notify);
                let me = k.rank();
                if me == 0 {
                    // Collect everything; senders tag mails with a sequence
                    // number so order per sender is checkable.
                    let total: usize = counts2.iter().map(|c| *c as usize).sum();
                    let mut last = [0u8; 4];
                    for _ in 0..total {
                        let m = mbx.recv(k);
                        let sender = m.from.idx();
                        let seq = m.data()[0];
                        assert!(seq > last[sender], "per-sender order violated");
                        last[sender] = seq;
                    }
                    total as u64
                } else {
                    for seq in 1..=counts2[me - 1] {
                        mbx.send(k, CoreId::new(0), MailKind::USER, &[seq]);
                        k.hw.advance((seq as u64 * 977) % 4000 + 10);
                    }
                    0
                }
            })
            .unwrap();
        let total: usize = counts.iter().map(|c| *c as usize).sum();
        assert_eq!(res[0].result, total as u64, "case {case}");
    }
}

// ------------------------------------ line accessors and scratch pad

use metalsvm::scratchpad::Scratchpad;
use metalsvm::ScratchLocation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The line-granular fast paths (`read_line` / `write_line` /
/// `write_line_masked`) agree with a plain byte array under any
/// interleaving with byte-granular writes, including the first and last
/// line of the backing store and every mask shape (empty, full, partial).
#[test]
fn atomic_words_line_accessors_match_byte_array() {
    const BYTES: usize = 512;
    const LAST_LINE: u32 = (BYTES - 32) as u32;
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x8000 + case);
        let w = AtomicWords::new(BYTES);
        let mut model = [0u8; BYTES];
        let steps = 16 + rng.gen_range_u64(96);
        for step in 0..steps {
            // Word-aligned line offsets; the boundary lines are forced
            // periodically so off-by-one bounds bugs cannot hide.
            let off = match step % 7 {
                0 => 0,
                1 => LAST_LINE,
                _ => rng.gen_range_u64(u64::from(LAST_LINE / 4) + 1) as u32 * 4,
            };
            match rng.gen_range_u64(4) {
                0 => {
                    // Byte-granular write interleaved with the line paths.
                    let len = 1 + rng.gen_range_u64(8) as usize;
                    let boff = rng.gen_range_u64((BYTES - len) as u64 + 1) as u32;
                    let val = rng.next_u64();
                    w.write(boff, len, val);
                    for k in 0..len {
                        model[boff as usize + k] = (val >> (k * 8)) as u8;
                    }
                }
                1 => {
                    let mut data = [0u8; 32];
                    for b in data.iter_mut() {
                        *b = rng.gen::<u32>() as u8;
                    }
                    w.write_line(off, &data);
                    model[off as usize..off as usize + 32].copy_from_slice(&data);
                }
                _ => {
                    let mut data = [0u8; 32];
                    for b in data.iter_mut() {
                        *b = rng.gen::<u32>() as u8;
                    }
                    let mask = match rng.gen_range_u64(4) {
                        0 => 0,
                        1 => u32::MAX,
                        _ => rng.gen::<u32>(), // partial: CAS word path
                    };
                    w.write_line_masked(off, &data, mask);
                    for (k, &b) in data.iter().enumerate() {
                        if mask & (1 << k) != 0 {
                            model[off as usize + k] = b;
                        }
                    }
                }
            }
            let got = w.read_line(off);
            assert_eq!(
                &got[..],
                &model[off as usize..off as usize + 32],
                "case {case} step {step}"
            );
        }
        // Full sweep through both read paths.
        for i in 0..BYTES as u32 {
            assert_eq!(w.read(i, 1) as u8, model[i as usize], "case {case} byte {i}");
        }
        for off in (0..=LAST_LINE).step_by(4) {
            assert_eq!(
                &w.read_line(off)[..],
                &model[off as usize..off as usize + 32],
                "case {case} line at {off}"
            );
        }
    }
}

/// The 16-bit scratch-pad placement table behaves like a map from page to
/// frame in both locations — striped across the MPBs and flat in off-die
/// memory — including the first/last page, the 16-bit encoding limit, and
/// stripe wrap-around (pages `p` and `p + ncores` share a core's MPB but
/// must stay independent).
#[test]
fn scratchpad_matches_map_model() {
    for loc in [ScratchLocation::Mpb, ScratchLocation::OffDie] {
        for case in 0..4u64 {
            let cl = Cluster::new(SccConfig::small()).unwrap();
            cl.run(1, move |k| {
                let ncores = k.hw.machine().cfg.ncores;
                let pages = 2 * ncores as u32 + 5; // wraps the stripe twice
                let offdie_pa = k.shared.named_header("prop.scratch", pages * 2, 64);
                let base_pfn = 0x4000;
                let pad = Scratchpad::new(loc, ncores, pages, offdie_pa, base_pfn);
                let mach = Arc::clone(k.hw.machine());
                let mut rng = StdRng::seed_from_u64(0x9000 + case);
                let mut model: HashMap<u32, u32> = HashMap::new();
                for step in 0..160u64 {
                    let p = match step % 11 {
                        0 => 0,
                        1 => pages - 1,
                        2 => 3, // stripe-wrap pair: same MPB, adjacent entries
                        3 => 3 + ncores as u32,
                        _ => rng.gen_range_u64(u64::from(pages)) as u32,
                    };
                    match rng.gen_range_u64(3) {
                        0 | 1 => {
                            let rel = match rng.gen_range_u64(8) {
                                0 => u32::from(u16::MAX) - 1, // largest legal entry
                                1 => u32::from(u16::MAX) - 2,
                                2 => 0,
                                _ => rng.gen_range_u64(60_000) as u32,
                            };
                            let pfn = base_pfn + rel;
                            pad.write(k, p, pfn);
                            model.insert(p, pfn);
                        }
                        _ => {
                            pad.clear(k, p);
                            model.remove(&p);
                        }
                    }
                    let want = model.get(&p).copied();
                    assert_eq!(
                        pad.read(k, p),
                        want,
                        "{loc:?} case {case} step {step} page {p}"
                    );
                    assert_eq!(
                        pad.peek(&mach, p),
                        want,
                        "peek {loc:?} case {case} step {step} page {p}"
                    );
                }
                // Final sweep: no entry aliases another (the striping maps
                // pages to distinct half-words).
                for p in 0..pages {
                    assert_eq!(
                        pad.read(k, p),
                        model.get(&p).copied(),
                        "sweep {loc:?} case {case} page {p}"
                    );
                }
            })
            .unwrap();
        }
    }
}

/// RCCE messages of arbitrary sizes (across the chunk boundary) arrive
/// byte-exact.
#[test]
fn rcce_roundtrip_arbitrary_sizes() {
    for case in 0..6u64 {
        let mut g = Gen::new(0x7000 + case);
        let sizes: Vec<u32> = (0..g.range(1, 4)).map(|_| g.range(1, 20_000) as u32).collect();
        let sizes2 = sizes.clone();
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, move |k| {
            let mut comm = rcce::RcceComm::init(k);
            let max = *sizes2.iter().max().unwrap();
            let va = k.kalloc_pages(max.div_ceil(4096) + 1);
            for (round, &len) in sizes2.iter().enumerate() {
                if comm.ue() == 0 {
                    for i in 0..len {
                        k.vwrite(va + i, 1, u64::from((i as u8) ^ (round as u8)));
                    }
                    rcce::send(k, &mut comm, 1, va, len);
                } else {
                    rcce::recv(k, &mut comm, 0, va, len);
                    for i in (0..len).step_by(97) {
                        assert_eq!(
                            k.vread(va + i, 1) as u8,
                            (i as u8) ^ (round as u8),
                            "byte {i} of round {round} (case {case})"
                        );
                    }
                }
            }
        })
        .unwrap();
    }
}

// -------------------------------------------------------------- Topology

use scc_hw::Topology;

/// A random valid mesh shape. Dimensions are drawn first and the builder
/// is the oracle: a draw it rejects (e.g. `num_mcs / 2 > mesh_y`) is
/// simply redrawn, so every property below runs on shapes the public API
/// actually admits — from 1x1x1:2 up past the 512-core presets.
fn random_topology(g: &mut Gen) -> Topology {
    loop {
        let x = g.range(1, 24) as u32;
        let y = g.range(1, 24) as u32;
        let c = g.range(1, 5) as u32;
        let m = 1usize << g.range(1, 4); // 2, 4 or 8 controllers
        let t = Topology::builder()
            .mesh(x, y)
            .cores_per_tile(c)
            .num_mcs(m)
            .build();
        if let Ok(t) = t {
            return t;
        }
    }
}

/// A random core of `t`.
fn random_core(g: &mut Gen, t: &Topology) -> CoreId {
    t.try_core(g.range(0, t.num_cores() as u64) as usize)
        .expect("drawn inside num_cores")
}

/// Hop counts are a metric on the mesh: zero on the diagonal, symmetric,
/// triangle inequality, and never beyond the corner-to-corner diameter.
#[test]
fn topology_hops_form_a_metric() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x8000 + case);
        let t = random_topology(&mut g);
        for _ in 0..32 {
            let (a, b, c) = (
                random_core(&mut g, &t),
                random_core(&mut g, &t),
                random_core(&mut g, &t),
            );
            assert_eq!(t.hops(a, a), 0, "case {case} ({t})");
            assert_eq!(t.hops(a, b), t.hops(b, a), "case {case} ({t})");
            assert!(
                t.hops(a, c) <= t.hops(a, b) + t.hops(b, c),
                "case {case} ({t}): triangle inequality {a:?} {b:?} {c:?}"
            );
            assert!(
                t.hops(a, b) <= t.max_hops(),
                "case {case} ({t}): {a:?}->{b:?} exceeds the mesh diameter"
            );
        }
    }
}

/// Tiles are numbered row-major: core `i` lives on tile `i / cores_per_tile`
/// at `(tile % mesh_x, tile / mesh_x)`, and every coordinate stays inside
/// the declared mesh.
#[test]
fn topology_tiles_are_row_major_and_in_range() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x8100 + case);
        let t = random_topology(&mut g);
        for core in t.cores() {
            let tile = core.idx() as u32 / t.cores_per_tile();
            let at = t.tile_of(core);
            assert_eq!(at.x, tile % t.mesh_x(), "case {case} ({t}) core {core:?}");
            assert_eq!(at.y, tile / t.mesh_x(), "case {case} ({t}) core {core:?}");
            assert!(at.x < t.mesh_x() && at.y < t.mesh_y(), "case {case} ({t})");
        }
    }
}

/// `nearest_mc` is the argmin of `hops_to_mc` with lowest-index tie-break,
/// and every controller sits on a valid mesh edge coordinate.
#[test]
fn topology_nearest_mc_is_the_argmin() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x8200 + case);
        let t = random_topology(&mut g);
        for mc in 0..t.num_mcs() {
            let at = t.mc_coord(mc);
            assert!(at.x < t.mesh_x() && at.y < t.mesh_y(), "case {case} ({t}) mc {mc}");
            assert!(
                at.x == 0 || at.x == t.mesh_x() - 1,
                "case {case} ({t}): controller {mc} not on a left/right edge"
            );
        }
        for _ in 0..16 {
            let core = random_core(&mut g, &t);
            let picked = t.nearest_mc(core);
            let best = (0..t.num_mcs())
                .min_by_key(|&mc| (t.hops_to_mc(core, mc), mc))
                .unwrap();
            assert_eq!(picked, best, "case {case} ({t}) core {core:?}");
        }
    }
}

/// Figure 7 regression: on the real 48-core die, core 0 (tile 0,0) and
/// core 30 (tile x=3,y=2) sit five hops apart — the pair the paper's
/// remote-MPB latency curve is plotted against.
#[test]
fn topology_scc48_core0_core30_is_five_hops() {
    let t = Topology::scc48();
    assert_eq!(t.hops(CoreId::new(0), CoreId::new(30)), 5);
    // And the diameter of the 6x4 die is (6-1) + (4-1) = 8.
    assert_eq!(t.max_hops(), 8);
}
