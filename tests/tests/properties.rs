//! Property-based tests (proptest) on the core data structures and on the
//! consistency invariants of the full stack.

use proptest::prelude::*;
use scc_hw::cache::{Cache, Wcb};
use scc_hw::config::{CacheGeom, LINE_BYTES};
use scc_hw::ram::AtomicWords;
use scc_kernel::paging::{PageFlags, PageTable};
use std::collections::HashMap;

// ------------------------------------------------------------ AtomicWords

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of byte-granular writes behaves like a plain byte
    /// array.
    #[test]
    fn atomic_words_match_byte_array(
        ops in prop::collection::vec((0u32..252, 1usize..=8, any::<u64>()), 1..64)
    ) {
        let w = AtomicWords::new(256);
        let mut model = [0u8; 256];
        for (off, len, val) in ops {
            let off = off.min(256 - len as u32);
            w.write(off, len, val);
            for k in 0..len {
                model[off as usize + k] = (val >> (k * 8)) as u8;
            }
            // Read back both the written range and a few byte probes.
            let got = w.read(off, len);
            let mut want = 0u64;
            for k in 0..len {
                want |= (model[off as usize + k] as u64) << (k * 8);
            }
            prop_assert_eq!(got, want);
        }
        for i in 0..256u32 {
            prop_assert_eq!(w.read(i, 1) as u8, model[i as usize]);
        }
    }

    /// A cache with any mix of fills, write-through hits and invalidations
    /// never returns a value that was not the most recent write (single
    /// core; cross-core staleness is intentional and tested elsewhere).
    #[test]
    fn cache_single_core_coherent(
        ops in prop::collection::vec((0u32..32, 0usize..7, any::<u32>(), any::<bool>()), 1..128)
    ) {
        let mut cache = Cache::new(CacheGeom { size: 256, assoc: 2 });
        let mut backing: HashMap<u32, [u8; LINE_BYTES]> = HashMap::new();
        for (la, off4, val, mpbt) in ops {
            let off = off4 * 4; // aligned 4-byte accesses
            // Read path: fill on miss from backing.
            if cache.read(la, off, 4).is_none() {
                let line = *backing.entry(la).or_insert([0; LINE_BYTES]);
                cache.fill(la, line, mpbt);
            }
            // Write-through: update cache if present and backing always.
            cache.write_if_present(la, off, 4, val as u64, true);
            let line = backing.entry(la).or_insert([0; LINE_BYTES]);
            line[off..off + 4].copy_from_slice(&val.to_le_bytes());
            // The next read must see the write.
            let got = cache.read(la, off, 4).expect("just filled");
            prop_assert_eq!(got as u32, val);
        }
    }

    /// The WCB's overlay always reflects the newest buffered bytes, and a
    /// flush carries exactly the buffered bytes.
    #[test]
    fn wcb_overlay_and_flush_consistent(
        ops in prop::collection::vec((0usize..LINE_BYTES, 1usize..=8, any::<u64>()), 1..32)
    ) {
        let mut wcb = Wcb::new();
        let mut model: [Option<u8>; LINE_BYTES] = [None; LINE_BYTES];
        let la = 7;
        for (off, len, val) in ops {
            let off = off.min(LINE_BYTES - len);
            let flushed = wcb.merge(la, off, len, val);
            prop_assert!(flushed.is_none(), "single line never self-flushes");
            for k in 0..len {
                model[off + k] = Some((val >> (k * 8)) as u8);
            }
        }
        // Overlay over a zero value must reproduce the model.
        for i in 0..LINE_BYTES {
            let v = wcb.overlay(la, i, 1, 0) as u8;
            prop_assert_eq!(v, model[i].unwrap_or(0));
        }
        let f = wcb.take().expect("dirty");
        for i in 0..LINE_BYTES {
            let buffered = f.mask & (1 << i) != 0;
            prop_assert_eq!(buffered, model[i].is_some());
            if buffered {
                prop_assert_eq!(f.data[i], model[i].unwrap());
            }
        }
    }

    /// The two-level page table behaves like a map from page number to
    /// (pfn, flags).
    #[test]
    fn page_table_matches_map(
        ops in prop::collection::vec((any::<u32>(), 0u32..0xFFFFF, prop::bool::ANY), 1..128)
    ) {
        let mut pt = PageTable::new();
        let mut model: HashMap<u32, u32> = HashMap::new();
        for (va, pfn, unmap) in ops {
            let page = va & !0xfff;
            if unmap {
                pt.unmap(page);
                model.remove(&page);
            } else {
                pt.map(page, pfn, PageFlags::shared_rw());
                model.insert(page, pfn);
            }
            match model.get(&page) {
                Some(&want) => {
                    let pte = pt.lookup(va);
                    prop_assert!(pte.flags().present());
                    prop_assert_eq!(pte.pfn(), want);
                }
                None => prop_assert!(!pt.lookup(va).flags().present()),
            }
        }
        prop_assert_eq!(pt.mapped_pages(), model.len());
    }
}

// ----------------------------------------------------- full-stack invariants

use integration_tests::with_stack;
use metalsvm::{Consistency, SvmArray};
use scc_mailbox::Notify;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lazy-release SVM with barrier separation behaves like one shared
    /// array for any single-writer-per-round schedule.
    #[test]
    fn svm_lazy_single_writer_rounds_linearise(
        writes in prop::collection::vec((0usize..3, 0usize..32, any::<u32>()), 1..12)
    ) {
        let writes2 = writes.clone();
        let results = with_stack(3, Notify::Ipi, move |k, _mbx, svm| {
            let r = svm.alloc(k, 4096, Consistency::LazyRelease);
            let a = SvmArray::<u32>::new(r, 32);
            svm.barrier(k);
            for (writer, idx, val) in &writes2 {
                if k.rank() == *writer {
                    a.set(k, *idx, *val);
                }
                svm.barrier(k);
            }
            (0..32).map(|i| a.get(k, i)).collect::<Vec<u32>>()
        });
        let mut model = [0u32; 32];
        for (_, idx, val) in &writes {
            model[*idx] = *val;
        }
        for r in &results {
            prop_assert_eq!(&r[..], &model[..]);
        }
    }

    /// The same under the strong model (ownership migration per access).
    #[test]
    fn svm_strong_single_writer_rounds_linearise(
        writes in prop::collection::vec((0usize..2, 0usize..16, any::<u32>()), 1..8)
    ) {
        let writes2 = writes.clone();
        let results = with_stack(2, Notify::Ipi, move |k, _mbx, svm| {
            let r = svm.alloc(k, 4096, Consistency::Strong);
            let a = SvmArray::<u32>::new(r, 16);
            svm.barrier(k);
            for (writer, idx, val) in &writes2 {
                if k.rank() == *writer {
                    a.set(k, *idx, *val);
                }
                svm.barrier(k);
            }
            (0..16).map(|i| a.get(k, i)).collect::<Vec<u32>>()
        });
        let mut model = [0u32; 16];
        for (_, idx, val) in &writes {
            model[*idx] = *val;
        }
        for r in &results {
            prop_assert_eq!(&r[..], &model[..]);
        }
    }
}

// ------------------------------------------------------- mailbox fuzzing

use scc_hw::{CoreId, SccConfig};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, MailKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random many-to-one mail streams arrive completely and in per-sender
    /// order, under both notification strategies.
    #[test]
    fn mailbox_streams_preserve_per_sender_order(
        counts in prop::collection::vec(1u8..12, 3),
        ipi in prop::bool::ANY,
    ) {
        let counts2 = counts.clone();
        let notify = if ipi { Notify::Ipi } else { Notify::Poll };
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(4, move |k| {
                let mbx = mbx_install(k, notify);
                let me = k.rank();
                if me == 0 {
                    // Collect everything; senders tag mails with a sequence
                    // number so order per sender is checkable.
                    let total: usize = counts2.iter().map(|c| *c as usize).sum();
                    let mut last = [0u8; 4];
                    for _ in 0..total {
                        let m = mbx.recv(k);
                        let sender = m.from.idx();
                        let seq = m.data()[0];
                        assert!(seq > last[sender], "per-sender order violated");
                        last[sender] = seq;
                    }
                    total as u64
                } else {
                    for seq in 1..=counts2[me - 1] {
                        mbx.send(k, CoreId::new(0), MailKind::USER, &[seq]);
                        k.hw.advance((seq as u64 * 977) % 4000 + 10);
                    }
                    0
                }
            })
            .unwrap();
        let total: usize = counts.iter().map(|c| *c as usize).sum();
        prop_assert_eq!(res[0].result, total as u64);
    }

    /// RCCE messages of arbitrary sizes (across the chunk boundary) arrive
    /// byte-exact.
    #[test]
    fn rcce_roundtrip_arbitrary_sizes(
        sizes in prop::collection::vec(1u32..20_000, 1..4),
    ) {
        let sizes2 = sizes.clone();
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, move |k| {
            let mut comm = rcce::RcceComm::init(k);
            let max = *sizes2.iter().max().unwrap();
            let va = k.kalloc_pages(max.div_ceil(4096) + 1);
            for (round, &len) in sizes2.iter().enumerate() {
                if comm.ue() == 0 {
                    for i in 0..len {
                        k.vwrite(va + i, 1, u64::from((i as u8) ^ (round as u8)));
                    }
                    rcce::send(k, &mut comm, 1, va, len);
                } else {
                    rcce::recv(k, &mut comm, 0, va, len);
                    for i in (0..len).step_by(97) {
                        assert_eq!(
                            k.vread(va + i, 1) as u8,
                            (i as u8) ^ (round as u8),
                            "byte {i} of round {round}"
                        );
                    }
                }
            }
        })
        .unwrap();
    }
}
