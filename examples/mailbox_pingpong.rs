//! The inter-kernel communication layer in isolation: ping-pong mails
//! between two cores, comparing the polling and IPI notification paths —
//! a miniature of the paper's Figure 6 experiment.
//!
//! Run with: `cargo run -p metalsvm-examples --bin mailbox_pingpong`

use scc_hw::{CoreId, SccConfig};
use scc_kernel::Cluster;
use scc_mailbox::{install, MailKind, Notify};

fn pingpong(notify: Notify, partner: CoreId, rounds: u64) -> f64 {
    let cfg = SccConfig::small();
    let mhz = cfg.timing.core_mhz as f64;
    let cl = Cluster::new(cfg).unwrap();
    let a = CoreId::new(0);
    let res = cl
        .run_on(&[a, partner], move |k| {
            let mbx = install(k, notify);
            if k.id() == a {
                let t0 = k.hw.now();
                for i in 0..rounds {
                    mbx.send(k, partner, MailKind::USER, &(i as u32).to_le_bytes());
                    let pong = mbx.recv_from(k, partner);
                    assert_eq!(pong.u32_at(0), i as u32 + 1);
                }
                (k.hw.now() - t0) as f64 / (2 * rounds) as f64
            } else {
                for _ in 0..rounds {
                    let ping = mbx.recv_from(k, a);
                    let reply = ping.u32_at(0) + 1;
                    mbx.send(k, a, MailKind::USER, &reply.to_le_bytes());
                }
                0.0
            }
        })
        .unwrap();
    res[0].result / mhz
}

fn main() {
    println!("mailbox half-round-trip latency, core 0 <-> core 30 (5 hops)\n");
    for (label, notify) in [("polling (no IPI)", Notify::Poll), ("IPI driven", Notify::Ipi)] {
        let us = pingpong(notify, CoreId::new(30), 100);
        println!("{label:>18}: {us:7.3} simulated us");
    }
    println!(
        "\nwith only two active cores, polling wins (no interrupt entry);\n\
         Figure 7 shows how that reverses as more cores need scanning."
    );
}
