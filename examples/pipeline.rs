//! A token pipeline over the raw mailbox system: rank 0 produces, the
//! middle ranks transform, the last rank folds. Shows sustained
//! point-to-point mailbox traffic with backpressure from the single-slot
//! mailboxes.
//!
//! Run with: `cargo run -p metalsvm-examples --bin pipeline`

use scc_apps::pipeline::{pipeline, pipeline_reference};
use scc_hw::SccConfig;
use scc_kernel::Cluster;
use scc_mailbox::{install, Notify};

fn main() {
    let stages = 5;
    let tokens = 200;
    let cl = Cluster::new(SccConfig::small()).unwrap();
    let res = cl
        .run(stages, move |k| {
            let mbx = install(k, Notify::Ipi);
            let out = pipeline(k, &mbx, tokens);
            let (sent, received, _, stalls) = mbx.stats().snapshot();
            (out, sent, received, stalls)
        })
        .unwrap();

    println!("{stages}-stage pipeline, {tokens} tokens\n");
    println!("rank  sent  received  send-stalls");
    for (i, r) in res.iter().enumerate() {
        let (_, sent, received, stalls) = r.result;
        println!("{i:>4}  {sent:>4}  {received:>8}  {stalls:>11}");
    }
    let sink = res.last().unwrap().result.0;
    assert_eq!(sink, pipeline_reference(tokens, stages));
    println!("\nsink checksum {sink:#018x} matches the host reference");
}
