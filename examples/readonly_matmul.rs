//! Read-only regions in action (§6.4): a dense matrix product whose input
//! matrices are collectively sealed after initialisation. Stray writes
//! would become hard page faults, and the seal clears the MPBT tag so the
//! otherwise sacrificed L2 cache serves the inputs.
//!
//! Run with: `cargo run -p metalsvm-examples --release --bin readonly_matmul`

use metalsvm::{install as svm_install, SvmConfig};
use scc_apps::matmul::{matmul, matmul_reference_trace};
use scc_hw::power;
use scc_hw::SccConfig;
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

fn main() {
    let n = 48; // matrix dimension
    let cores = 6;
    let cfg = SccConfig::small();
    let timing = cfg.timing.clone();
    let chip_cores = cfg.topo.num_cores();
    let cl = Cluster::new(cfg).unwrap();
    let res = cl
        .run(cores, move |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());
            matmul(k, &mut svm, n)
        })
        .unwrap();

    println!("C = A x B, {n}x{n} doubles on {cores} cores\n");
    println!("trace(C) = {:.3} (reference {:.3})", res[0].result, matmul_reference_trace(n));
    assert!((res[0].result - matmul_reference_trace(n)).abs() < 1e-9);

    let max_ms = res
        .iter()
        .map(|r| r.clock.as_u64())
        .max()
        .unwrap() as f64
        / timing.core_mhz as f64
        / 1000.0;
    println!("simulated runtime: {max_ms:.3} ms");

    // The energy model (§3's 25-125 W envelope): per-core estimates.
    let pw = power::PowerParams::default();
    let joules: f64 = res
        .iter()
        .map(|r| power::estimate(&r.perf, r.clock.as_u64(), chip_cores, &timing, &pw).total_j())
        .sum();
    println!("estimated energy over the {cores} active cores: {:.3} mJ", joules * 1e3);
    let l2: u64 = res.iter().map(|r| r.perf.l2_hits).sum();
    println!("L2 hits across cores: {l2} (the sealed inputs are L2-served)");
}
