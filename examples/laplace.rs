//! The paper's evaluation workload as an example: the two-dimensional
//! Laplace problem on 8 cores, solved by all three variants, with a
//! cross-check of their results.
//!
//! Run with: `cargo run -p metalsvm-examples --release --bin laplace`

use metalsvm::{install as svm_install, Consistency, SvmConfig};
use rcce::RcceComm;
use scc_apps::laplace::{laplace_ircce, laplace_reference, laplace_svm, LaplaceParams};
use scc_hw::SccConfig;
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

fn main() {
    let p = LaplaceParams {
        width: 256,
        height: 128,
        iters: 20,
    };
    let n = 8;
    println!(
        "2-D Laplace (heat distribution), {}x{} grid, {} iterations, {n} cores\n",
        p.width, p.height, p.iters
    );

    let mhz = SccConfig::default().timing.core_mhz as f64;

    // Shared-memory variants on the SVM system.
    for model in [Consistency::Strong, Consistency::LazyRelease] {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(n, move |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, SvmConfig::default());
                laplace_svm(k, &mut svm, model, p)
            })
            .unwrap();
        let ms = res.iter().map(|r| r.result.cycles).max().unwrap() as f64 / mhz / 1000.0;
        println!(
            "SVM {model:?}: checksum {:>14.6}, simulated {ms:>8.2} ms",
            res[0].result.checksum
        );
        assert_eq!(res[0].result.checksum, laplace_reference(p));
    }

    // Message-passing baseline on iRCCE.
    let cl = Cluster::new(SccConfig::small()).unwrap();
    let res = cl
        .run(n, move |k| {
            let mut comm = RcceComm::init(k);
            laplace_ircce(k, &mut comm, p)
        })
        .unwrap();
    let ms = res.iter().map(|r| r.result.cycles).max().unwrap() as f64 / mhz / 1000.0;
    println!(
        "iRCCE MP   : checksum {:>14.6}, simulated {ms:>8.2} ms",
        res[0].result.checksum
    );
    assert_eq!(res[0].result.checksum, laplace_reference(p));

    println!("\nall three variants agree bitwise with the sequential reference");
}
