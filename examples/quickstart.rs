//! Quickstart: boot a simulated SCC, install the mailbox + SVM stack on
//! four cores, and share data under both consistency models.
//!
//! Run with: `cargo run -p metalsvm-examples --bin quickstart`

use metalsvm::{install as svm_install, Consistency, SvmArray, SvmConfig};
use scc_hw::SccConfig;
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

fn main() {
    // A 48-core SCC with the paper's clock configuration (533 MHz cores,
    // 800 MHz mesh and memory). `small()` shrinks the memory footprint.
    let cluster = Cluster::new(SccConfig::small()).expect("valid machine");

    let results = cluster
        .run(4, |k| {
            // Every core boots its own kernel; the mailbox system and the
            // SVM system are installed per core, exactly like MetalSVM's
            // kernel subsystems.
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());

            // Collective allocation: reserves shared virtual address
            // space; physical frames appear on first touch, near the
            // touching core's memory controller.
            let region = svm.alloc(k, 4096, Consistency::Strong);
            let cell = SvmArray::<u64>::new(region, 1);

            // Core 0 writes, everyone else reads — under the strong model
            // the page's ownership migrates core to core on each access.
            if k.rank() == 0 {
                cell.set(k, 0, 4711);
            }
            svm.barrier(k);
            let seen = cell.get(k, 0);
            svm.barrier(k);

            (k.id(), seen, k.hw.now())
        })
        .expect("no deadlock");

    println!("core  value  simulated cycles");
    for r in results {
        let (core, seen, cycles) = r.result;
        println!("{core:>4}  {seen:>5}  {cycles:>10}");
        assert_eq!(seen, 4711);
    }
    println!("\nall four cores observed core 0's write through the SVM system");
}
