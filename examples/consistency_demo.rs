//! Non-coherence made visible: what goes wrong without the SVM system's
//! cache actions, and how the lazy-release hooks repair it.
//!
//! Run with: `cargo run -p metalsvm-examples --bin consistency_demo`

use metalsvm::{install as svm_install, Consistency, SvmArray, SvmConfig};
use scc_hw::SccConfig;
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

fn main() {
    let cl = Cluster::new(SccConfig::small()).unwrap();
    let res = cl
        .run(2, |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());
            let region = svm.alloc(k, 4096, Consistency::LazyRelease);
            let a = SvmArray::<u64>::new(region, 8);

            // Round 1: publish 1, everyone caches it.
            if k.rank() == 0 {
                a.set(k, 0, 1);
                k.hw.flush_wcb();
            }
            svm.barrier(k);
            let first = a.get(k, 0);

            // Round 2: core 0 updates to 2 and flushes, but core 1 does
            // NOT invalidate -> its L1 still serves the old value. The
            // SCC has no hardware coherence to fix this.
            svm.barrier_no_invalidate_for_test(k);
            if k.rank() == 0 {
                a.set(k, 0, 2);
                k.hw.flush_wcb();
            }
            svm.barrier_no_invalidate_for_test(k);
            let stale = a.get(k, 0);

            // The lazy-release acquire action: CL1INVMB drops the tagged
            // lines, the next read fetches fresh data from off-die memory.
            k.hw.cl1invmb();
            let fresh = a.get(k, 0);
            svm.barrier(k);
            (first, stale, fresh)
        })
        .unwrap();

    let (first, stale, fresh) = res[1].result;
    println!("core 1's view of the shared word:");
    println!("  after the first publish : {first}");
    println!("  after core 0 wrote 2    : {stale}   <- stale! cached copy, no coherence");
    println!("  after CL1INVMB          : {fresh}   <- the acquire hook fixes it");
    assert_eq!((first, stale, fresh), (1, 1, 2));
    println!(
        "\nthis staleness is exactly why MetalSVM invalidates on acquire\n\
         and flushes the write-combine buffer on release (paper, §6.2)"
    );
}
