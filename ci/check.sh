#!/usr/bin/env bash
# Tier-1 gate plus the instrumentation feature matrix.
#
# The structured-event trace (scc-hw's `trace` cargo feature) claims to be
# zero-cost when disabled: the same call sites compile in both
# configurations, with `TraceRing` collapsing to a zero-sized type. That
# claim only holds while both halves of the matrix keep building, so CI
# exercises default and `--features trace` on every run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: default features =="
cargo build --release
cargo test -q

echo "== clippy: workspace, default features =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy: workspace, trace feature =="
cargo clippy --workspace --all-targets \
    --features scc-hw/trace,scc-kernel/trace,scc-mailbox/trace,metalsvm/trace,scc-bench/trace,scc-explore/trace,integration-tests/trace \
    -- -D warnings

echo "== trace feature: release build =="
cargo build --release --features trace \
    -p scc-hw -p scc-kernel -p scc-mailbox -p metalsvm \
    -p scc-bench -p integration-tests

echo "== trace feature: tests (ring + shadow-clock identity) =="
cargo test -q --features trace -p scc-hw
cargo test -q --features trace -p integration-tests --test instrumentation

# The parallel conservative executor (host_fast.parallel, DESIGN.md §8)
# must replay the serial baton schedule bit for bit. The shadow suite runs
# both executors on every workload; crossing it with the trace feature also
# compares the per-core event rings event for event.
echo "== parallel executor: shadow suite, default features =="
cargo test -q -p integration-tests --test parallel_shadow

echo "== parallel executor: shadow suite, trace feature =="
cargo test -q --features trace -p integration-tests --test parallel_shadow

# The epoch engine's determinism must hold regardless of how many host
# threads actually run simulated cores: SCC_PAR_HOST_THREADS gates the
# number of concurrently running cores (DESIGN.md §8), and each cap
# produces different host interleavings of the demoted fast paths. The
# conflict stress suite runs alongside because contended same-object races
# are where a cap-dependent bug would surface first.
for threads in 2 4; do
    echo "== parallel executor: shadow + stress, SCC_PAR_HOST_THREADS=$threads =="
    SCC_PAR_HOST_THREADS=$threads cargo test -q -p integration-tests \
        --test parallel_shadow --test parallel_stress
done

# The svm-check consistency checker (DESIGN.md §9). The test suite covers
# both halves of its story: with the trace feature every clean app must be
# finding-free and every buggy fixture must yield exactly its planted
# finding (online sink and offline replay agreeing); without it the
# checker must be a perfect no-op.
echo "== svmcheck: checker suite, trace feature =="
cargo test -q --features trace -p integration-tests --test checker
cargo test -q -p scc-checker

echo "== svmcheck: checker suite, no-op without the trace feature =="
cargo test -q -p integration-tests --test checker

# End-to-end offline path: trace the clean 48-core Laplace run and every
# buggy fixture, then re-parse the logs with the svmcheck binary. The
# Laplace log must be clean; each fixture log must contain exactly its
# planted finding.
echo "== svmcheck: offline gate over captured traces =="
cargo build -q --release --features trace -p scc-bench \
    --bin trace_laplace --bin trace_fixture
cargo build -q --release -p scc-checker --bin svmcheck
./target/release/trace_laplace --quick
./target/release/trace_fixture
./target/release/svmcheck results/TRACE_laplace.log
./target/release/svmcheck --expect stale-read results/TRACE_stale_read.log
./target/release/svmcheck --expect grant-by-non-owner results/TRACE_forged_grant.log
./target/release/svmcheck --expect unreleased-lock results/TRACE_unreleased_lock.log
./target/release/svmcheck --expect release-not-held results/TRACE_double_release.log
./target/release/svmcheck --expect acquire-without-invalidate results/TRACE_acquire_no_invalidate.log
./target/release/svmcheck --expect release-without-flush results/TRACE_release_no_flush.log

# The svm-kv service (DESIGN.md §13): the partitioned key-value store
# over SVM with mailbox RPC. The crate suite runs the service end to end
# on the simulated cluster (reply validation, sealed-partition rejection,
# seed-reproducibility); the cross-crate suite holds the latency
# histogram to its error bound against a naive model and diffs serial vs
# parallel-executor runs bit for bit. The traced smoke then proves the
# instrumentation free, checks every detector online, and re-parses the
# exported protocol log with the svmcheck binary — a clean kv run under
# strong + LRC partitions must stay finding-free offline too.
echo "== svm-kv: service suite =="
cargo test -q -p scc-kv
cargo test -q -p integration-tests --test kv

echo "== svm-kv: traced smoke + svmcheck offline gate =="
cargo build -q --release --features trace -p scc-bench --bin trace_kv
./target/release/trace_kv --quick
./target/release/svmcheck results/TRACE_kv.log

# Schedule exploration + fault injection (DESIGN.md §10). The smoke sweep
# runs the whole registry on fixed budgets: clean apps must stay clean
# under the baton, sampled random seeds and a dropped-doorbell fault plan
# (recovering via mbx.retries); all eight planted bugs — six checker
# fixtures plus the two schedule-sensitive ones — must be found and shrunk
# to replay files that re-trigger. Exit status 0 is exactly that gate.
echo "== svmexplore: schedule/fault exploration smoke =="
cargo build -q --release --features trace -p scc-explore --bin svmexplore
./target/release/svmexplore --seeds 24 --out results \
    --json results/EXPLORE_summary.json

echo "== svmexplore: explorer suite, both feature halves =="
cargo test -q --features trace -p integration-tests --test explore
cargo test -q -p integration-tests --test explore
cargo test -q -p scc-explore

# Coverage-guided schedule fuzzing (DESIGN.md §16). The bounded smoke
# campaign must find both planted schedule bugs, keep every clean app
# free of false findings, and beat the blind sweep on total executions
# to find them — `--bench` asserts all of that plus the 64-core leg
# (corpus growth, zero false findings on 8x8x1:4) and exits non-zero
# otherwise. Fixed seed, ≤200 executions per app; the whole leg is
# seconds. The property/determinism suites ride along: fault-plan
# round-trips, counter windows, and the two-process reproducibility
# check (which spawns the svmfuzz binary itself).
echo "== svmfuzz: fuzzing suite, both feature halves =="
cargo test -q --features trace -p scc-explore
cargo test -q -p scc-explore

echo "== svmfuzz: bounded smoke + blind-sweep benchmark (scc48 + mesh64) =="
cargo build -q --release --features trace -p scc-explore --bin svmfuzz
./target/release/svmfuzz --execs 200 --seed 2 --out results \
    --json results/FUZZ_summary.json
./target/release/svmfuzz --bench results/BENCH_fuzz.json --execs 40 --seed 2 \
    --out results

# Configurable topology (DESIGN.md §11). The machine shape is a runtime
# parameter; the suites above all ran the scc48 preset via the default.
# These legs re-run the determinism-critical suites on non-SCC shapes:
# the serial/parallel shadow comparison and the consistency checker on
# the 128-core 8x8 mesh, and the schedule/fault exploration smoke on a
# 64-core single-core-per-tile mesh. A topology-dependent assumption
# (fixed 48-core tables, 64-bit core masks, hardcoded hop counts) fails
# these legs even while every scc48 leg stays green.
echo "== topology: parallel shadow suite on mesh8x8 (128 cores) =="
SCC_TOPOLOGY=mesh8x8 cargo test -q -p integration-tests --test parallel_shadow

echo "== topology: checker suite on mesh8x8 (128 cores), trace feature =="
SCC_TOPOLOGY=mesh8x8 cargo test -q --features trace -p integration-tests --test checker

echo "== topology: svmexplore smoke on a 64-core 8x8 mesh =="
SCC_TOPOLOGY=8x8x1:4 ./target/release/svmexplore --seeds 8 --out results \
    --json results/EXPLORE_mesh64.json

# Topology-aware collectives (DESIGN.md §12). CollMode::Tree is the
# default, so every suite above already exercised the MPB-tree barrier;
# these legs make the comparison explicit. The agreement suite pins both
# modes in-config (barrier-only apps bit-identical, f64 sums within
# rounding); the mesh8x8 legs then re-run the determinism-critical
# suites with SCC_COLL=tree spelled out — serial/parallel bit-identity
# and svm-check cleanliness on the tree path at 128 cores — plus one
# SCC_COLL=flat shadow leg so the escape hatch stays honest.
echo "== collectives: flat-vs-tree agreement suite =="
cargo test -q -p integration-tests --test collectives

echo "== collectives: mesh8x8 shadow suite, SCC_COLL=tree =="
SCC_TOPOLOGY=mesh8x8 SCC_COLL=tree cargo test -q -p integration-tests \
    --test parallel_shadow

echo "== collectives: mesh8x8 checker suite, SCC_COLL=tree, trace feature =="
SCC_TOPOLOGY=mesh8x8 SCC_COLL=tree cargo test -q --features trace \
    -p integration-tests --test checker

echo "== collectives: scc48 shadow suite, SCC_COLL=flat (escape hatch) =="
SCC_COLL=flat cargo test -q -p integration-tests --test parallel_shadow

# The 512-core acceptance: Laplace on the full mesh16x32 preset must
# complete under the serial AND the parallel executor bit-identically,
# with svm-check clean over both runs' event streams (the machine is big
# enough that the SVM layer runs its sharded per-MC directories). Release
# profile: four 512-core runs are minutes of CPU without optimisation,
# hence the #[ignore] on the test in the dev-profile suite above.
echo "== topology: 512-core mesh16x32 Laplace acceptance (release, trace) =="
cargo test --release --features trace -p integration-tests \
    --test topology_scale -- --ignored

echo "ci/check.sh: all green"
