#!/usr/bin/env bash
# Tier-1 gate plus the instrumentation feature matrix.
#
# The structured-event trace (scc-hw's `trace` cargo feature) claims to be
# zero-cost when disabled: the same call sites compile in both
# configurations, with `TraceRing` collapsing to a zero-sized type. That
# claim only holds while both halves of the matrix keep building, so CI
# exercises default and `--features trace` on every run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: default features =="
cargo build --release
cargo test -q

echo "== trace feature: release build =="
cargo build --release --features trace \
    -p scc-hw -p scc-kernel -p scc-mailbox -p metalsvm \
    -p scc-bench -p integration-tests

echo "== trace feature: tests (ring + shadow-clock identity) =="
cargo test -q --features trace -p scc-hw
cargo test -q --features trace -p integration-tests --test instrumentation

# The parallel conservative executor (host_fast.parallel, DESIGN.md §8)
# must replay the serial baton schedule bit for bit. The shadow suite runs
# both executors on every workload; crossing it with the trace feature also
# compares the per-core event rings event for event.
echo "== parallel executor: shadow suite, default features =="
cargo test -q -p integration-tests --test parallel_shadow

echo "== parallel executor: shadow suite, trace feature =="
cargo test -q --features trace -p integration-tests --test parallel_shadow

echo "ci/check.sh: all green"
